package adaptive_test

import (
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/history"
	"spacebounds/internal/register"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/value"
	"spacebounds/internal/workload"
)

func newReg(t *testing.T, f, k, dataLen int) *adaptive.Register {
	t.Helper()
	reg, err := adaptive.New(register.Config{F: f, K: k, DataLen: dataLen})
	if err != nil {
		t.Fatalf("adaptive.New: %v", err)
	}
	return reg
}

func TestNameAndConfig(t *testing.T) {
	reg := newReg(t, 2, 2, 64)
	if reg.Name() != "adaptive(f=2,k=2)" {
		t.Fatalf("Name = %q", reg.Name())
	}
	cfg := reg.Config()
	if cfg.N() != 6 || cfg.Quorum() != 4 {
		t.Fatalf("config: n=%d q=%d", cfg.N(), cfg.Quorum())
	}
	if _, err := adaptive.New(register.Config{F: 1, K: 0, DataLen: 8}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSequentialWritesThenReads(t *testing.T) {
	reg := newReg(t, 1, 2, 128)
	res, err := workload.Run(reg, workload.Spec{
		Writers:            1,
		WritesPerWriter:    4,
		Readers:            2,
		ReadsPerReader:     3,
		ReadersAfterWrites: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WriteErrors != 0 || res.ReadErrors != 0 {
		t.Fatalf("errors: %d write, %d read", res.WriteErrors, res.ReadErrors)
	}
	if err := history.CheckStrongRegularity(res.History); err != nil {
		t.Fatalf("strong regularity: %v", err)
	}
	// Every read after the last write must return the last written value.
	last := workload.WriterValue(reg.Config(), 1, 4)
	for _, rd := range res.History.CompletedReads() {
		if !rd.Value.Equal(last) {
			t.Fatalf("read returned %v, want the last written value", rd.Value)
		}
	}
}

func TestConcurrentWritersRegularityAcrossSchedules(t *testing.T) {
	reg := newReg(t, 2, 2, 96)
	for seed := int64(1); seed <= 4; seed++ {
		res, err := workload.Run(reg, workload.Spec{
			Writers:            4,
			WritesPerWriter:    2,
			Readers:            2,
			ReadsPerReader:     2,
			ReadersAfterWrites: true,
			Policy:             dsys.NewRandomPolicy(seed),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.WriteErrors != 0 || res.ReadErrors != 0 {
			t.Fatalf("seed %d: errors %d/%d", seed, res.WriteErrors, res.ReadErrors)
		}
		if err := history.CheckWeakRegularity(res.History); err != nil {
			t.Fatalf("seed %d weak regularity: %v", seed, err)
		}
		if err := history.CheckStrongRegularity(res.History); err != nil {
			t.Fatalf("seed %d strong regularity: %v", seed, err)
		}
	}
}

func TestReadersConcurrentWithWriters(t *testing.T) {
	reg := newReg(t, 1, 2, 64)
	reg.SetReadRetryBudget(200)
	res, err := workload.Run(reg, workload.Spec{
		Writers:         3,
		WritesPerWriter: 2,
		Readers:         2,
		ReadsPerReader:  2,
		Policy:          dsys.NewRandomPolicy(7),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// FW-termination does not promise completion of reads that race with
	// writes, but any read that did complete must be regular.
	if err := history.CheckStrongRegularity(res.History); err != nil {
		t.Fatalf("strong regularity: %v", err)
	}
	if res.CompletedWrites != 6 {
		t.Fatalf("completed writes = %d, want 6 (writes are wait-free)", res.CompletedWrites)
	}
}

func TestStorageBoundTheorem2(t *testing.T) {
	// Theorem 2 / Corollary 3: base-object storage is bounded by
	// min((c+1)(2f+k)D/k, (2f+k) * 2D) bits (each object holds at most k
	// pieces in Vp and k pieces in Vf, i.e. at most 2D bits).
	const dataLen = 240 // divisible by all k used below
	for _, tc := range []struct{ f, k, writers int }{
		{1, 1, 1},
		{1, 2, 1},
		{1, 2, 4},
		{2, 2, 6},
		{2, 4, 3},
		{3, 3, 8},
	} {
		reg := newReg(t, tc.f, tc.k, dataLen)
		cfg := reg.Config()
		res, err := workload.Run(reg, workload.Spec{
			Writers:         tc.writers,
			WritesPerWriter: 2,
			Policy:          dsys.NewRandomPolicy(int64(tc.f*100 + tc.k*10 + tc.writers)),
		})
		if err != nil {
			t.Fatalf("f=%d k=%d c=%d: %v", tc.f, tc.k, tc.writers, err)
		}
		d := cfg.DataBits()
		pieceBits := d / tc.k
		perObjectCap := 2 * tc.k * pieceBits // k pieces in Vp + k pieces in Vf, i.e. at most 2D
		replicationBound := cfg.N() * perObjectCap
		if res.MaxBaseObjectBits > replicationBound {
			t.Errorf("f=%d k=%d c=%d: max base storage %d bits exceeds the replication-plateau bound %d",
				tc.f, tc.k, tc.writers, res.MaxBaseObjectBits, replicationBound)
		}
		if tc.writers == 1 {
			// Sequential writes: at most two pieces per object at any time
			// (the about-to-be-superseded value plus the new one), which is
			// the c+1 = 2 case of the (c+1)(2f+k)D/k bound.
			sequentialBound := 2 * cfg.N() * pieceBits
			if res.MaxBaseObjectBits > sequentialBound {
				t.Errorf("f=%d k=%d sequential: max base storage %d bits exceeds (c+1)(2f+k)D/k = %d",
					tc.f, tc.k, res.MaxBaseObjectBits, sequentialBound)
			}
		}
	}
}

func TestQuiescentStorageReduction(t *testing.T) {
	// Theorem 2, final clause: once finitely many writes have all completed,
	// storage shrinks back to (2f+k) * D/k bits — one piece per base object.
	reg := newReg(t, 2, 2, 120)
	cfg := reg.Config()
	res, err := workload.Run(reg, workload.Spec{Writers: 3, WritesPerWriter: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := cfg.N() * (cfg.DataBits() / cfg.K)
	if res.QuiescentBaseObjectBits != want {
		t.Fatalf("quiescent storage = %d bits, want %d", res.QuiescentBaseObjectBits, want)
	}
	if res.MaxBaseObjectBits < want {
		t.Fatalf("max storage %d below quiescent %d", res.MaxBaseObjectBits, want)
	}
}

func TestToleratesFCrashes(t *testing.T) {
	reg := newReg(t, 2, 2, 80)
	res, err := workload.Run(reg, workload.Spec{
		Writers:            2,
		WritesPerWriter:    2,
		Readers:            1,
		ReadsPerReader:     2,
		ReadersAfterWrites: true,
		CrashObjects:       []int{0, 3}, // f = 2 crashes
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WriteErrors != 0 || res.ReadErrors != 0 {
		t.Fatalf("errors with f crashes: %d write, %d read", res.WriteErrors, res.ReadErrors)
	}
	if err := history.CheckStrongRegularity(res.History); err != nil {
		t.Fatalf("strong regularity under crashes: %v", err)
	}
}

func TestTooManyCrashesGetsStuck(t *testing.T) {
	reg := newReg(t, 1, 1, 16)
	res, err := workload.Run(reg, workload.Spec{
		Writers:         1,
		WritesPerWriter: 1,
		CrashObjects:    []int{0, 1}, // more than f = 1 crashes
		MaxSteps:        500,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CompletedWrites != 0 {
		t.Fatalf("write completed despite losing a quorum")
	}
}

func TestReplicationSpecialCaseK1(t *testing.T) {
	// With k = 1 the algorithm degenerates to replication; quiescent storage
	// is (2f+1) * D.
	reg := newReg(t, 1, 1, 100)
	cfg := reg.Config()
	res, err := workload.Run(reg, workload.Spec{Writers: 2, WritesPerWriter: 2, Readers: 1, ReadsPerReader: 1, ReadersAfterWrites: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.QuiescentBaseObjectBits != cfg.N()*cfg.DataBits() {
		t.Fatalf("quiescent = %d, want %d", res.QuiescentBaseObjectBits, cfg.N()*cfg.DataBits())
	}
	if err := history.CheckStrongRegularity(res.History); err != nil {
		t.Fatal(err)
	}
}

// TestBlackBoxSubstitution reproduces Figure 2: re-running the same schedule
// with a different written value leaves every base object's non-block state
// (piece counts, timestamps, storedTS) identical; only block contents change.
func TestBlackBoxSubstitution(t *testing.T) {
	type shape struct {
		storedTS register.Timestamp
		vp, vf   int
	}
	runOnce := func(v value.Value) ([]shape, value.Value) {
		reg := newReg(t, 1, 2, 64)
		states, err := reg.InitialStates(value.Zero(64))
		if err != nil {
			t.Fatal(err)
		}
		cluster := dsys.NewCluster(states, dsys.WithDataBits(64*8))
		defer cluster.Close()
		th := cluster.Spawn(1, func(h *dsys.ClientHandle) error { return reg.Write(h, v) })
		var got value.Value
		cluster.Start()
		if err := th.Wait(); err != nil {
			t.Fatal(err)
		}
		rd := cluster.Spawn(2, func(h *dsys.ClientHandle) error {
			var err error
			got, err = reg.Read(h)
			return err
		})
		if err := rd.Wait(); err != nil {
			t.Fatal(err)
		}
		cluster.WaitIdle()
		shapes := make([]shape, cluster.N())
		for i := 0; i < cluster.N(); i++ {
			st := cluster.ObjectState(i).(interface {
				StoredTS() register.Timestamp
				VpLen() int
				VfLen() int
			})
			shapes[i] = shape{storedTS: st.StoredTS(), vp: st.VpLen(), vf: st.VfLen()}
		}
		return shapes, got
	}

	vA := value.Sequenced(1, 1, 64)
	vB := value.Sequenced(9, 9, 64)
	shapesA, gotA := runOnce(vA)
	shapesB, gotB := runOnce(vB)
	if !gotA.Equal(vA) || !gotB.Equal(vB) {
		t.Fatalf("reads returned wrong values: %v / %v", gotA, gotB)
	}
	for i := range shapesA {
		if shapesA[i] != shapesB[i] {
			t.Fatalf("object %d non-block state differs between substituted runs: %+v vs %+v", i, shapesA[i], shapesB[i])
		}
	}
}

func TestWriteRejectsWrongSize(t *testing.T) {
	reg := newReg(t, 1, 2, 32)
	states, err := reg.InitialStates(value.Zero(32))
	if err != nil {
		t.Fatal(err)
	}
	cluster := dsys.NewCluster(states)
	defer cluster.Close()
	th := cluster.Spawn(1, func(h *dsys.ClientHandle) error {
		return reg.Write(h, value.Zero(16))
	})
	cluster.Start()
	if err := th.Wait(); err == nil {
		t.Fatal("write of wrong-size value accepted")
	}
}
