package adaptive

import (
	"fmt"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// encodeUpdate / decodeUpdate serialize the shared body of updateRMW and
// seedUpdateRMW (they differ only in idempotence handling, not in fields).
func encodeUpdate(u *updateRMW) []byte {
	var w register.WireWriter
	w.Int(u.k)
	w.TS(u.ts)
	w.TS(u.storedTS)
	w.Chunk(u.piece)
	w.Chunks(u.full)
	return w.Finish()
}

func decodeUpdate(payload []byte) (updateRMW, error) {
	r := register.NewWireReader(payload)
	u := updateRMW{
		k:        r.Int(),
		ts:       r.TS(),
		storedTS: r.TS(),
		piece:    r.Chunk(),
		full:     r.Chunks(),
	}
	if err := r.Finish(); err != nil {
		return updateRMW{}, err
	}
	return u, nil
}

// encodeUpdateResp / decodeUpdateResp serialize the update round's response.
func encodeUpdateResp(resp any) ([]byte, error) {
	ur := resp.(updateResp)
	var w register.WireWriter
	w.Bool(ur.Stored)
	w.Bool(ur.ToVp)
	return w.Finish(), nil
}

func decodeUpdateResp(payload []byte) (any, error) {
	r := register.NewWireReader(payload)
	ur := updateResp{Stored: r.Bool(), ToVp: r.Bool()}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return ur, nil
}

// Wire codecs for the adaptive register's RMW kinds, registered at init so
// that linking the provider makes its operations transportable.
func init() {
	register.RegisterCodec(register.Codec{
		Kind:     "adaptive.read",
		ReadOnly: true,
		Encode:   register.EmptyPayload,
		Decode: func(payload []byte) (dsys.RMW, error) {
			if err := register.RequireEmpty(payload); err != nil {
				return nil, err
			}
			return &readValueRMW{}, nil
		},
		EncodeResp: func(resp any) ([]byte, error) {
			rr := resp.(readValueResp)
			var w register.WireWriter
			w.TS(rr.StoredTS)
			w.Chunks(rr.Chunks)
			return w.Finish(), nil
		},
		DecodeResp: func(payload []byte) (any, error) {
			r := register.NewWireReader(payload)
			rr := readValueResp{StoredTS: r.TS(), Chunks: r.Chunks()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return rr, nil
		},
	}, &readValueRMW{})

	register.RegisterCodec(register.Codec{
		Kind: "adaptive.update",
		Encode: func(rmw dsys.RMW) ([]byte, error) {
			return encodeUpdate(rmw.(*updateRMW)), nil
		},
		Decode: func(payload []byte) (dsys.RMW, error) {
			u, err := decodeUpdate(payload)
			if err != nil {
				return nil, err
			}
			return &u, nil
		},
		EncodeResp: encodeUpdateResp,
		DecodeResp: decodeUpdateResp,
	}, &updateRMW{})

	register.RegisterCodec(register.Codec{
		Kind: "adaptive.seedupdate",
		Encode: func(rmw dsys.RMW) ([]byte, error) {
			return encodeUpdate(&rmw.(*seedUpdateRMW).updateRMW), nil
		},
		Decode: func(payload []byte) (dsys.RMW, error) {
			u, err := decodeUpdate(payload)
			if err != nil {
				return nil, err
			}
			return &seedUpdateRMW{updateRMW: u}, nil
		},
		EncodeResp: encodeUpdateResp,
		DecodeResp: decodeUpdateResp,
	}, &seedUpdateRMW{})

	register.RegisterCodec(register.Codec{
		Kind: "adaptive.gc",
		Encode: func(rmw dsys.RMW) ([]byte, error) {
			g := rmw.(*gcRMW)
			var w register.WireWriter
			w.TS(g.ts)
			w.Chunk(g.piece)
			return w.Finish(), nil
		},
		Decode: func(payload []byte) (dsys.RMW, error) {
			r := register.NewWireReader(payload)
			g := &gcRMW{ts: r.TS(), piece: r.Chunk()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return g, nil
		},
		EncodeResp: func(resp any) ([]byte, error) {
			if _, ok := resp.(gcResp); !ok {
				return nil, fmt.Errorf("%w: response %T is not gcResp", register.ErrCodec, resp)
			}
			return nil, nil
		},
		DecodeResp: func(payload []byte) (any, error) {
			if err := register.RequireEmpty(payload); err != nil {
				return nil, err
			}
			return gcResp{}, nil
		},
	}, &gcRMW{})
}
