package adaptive

import "spacebounds/internal/register"

func init() {
	register.RegisterProvider("adaptive", func(cfg register.Config) (register.Register, error) {
		return New(cfg)
	})
}
