package adaptive

import (
	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// State codec for snapshot persistence. The adaptive state is encoded whole
// (index, stored timestamp, Vp and Vf piece sets) rather than reconstructed
// from synthetic updates: updateRMW.Apply is order-sensitive in how it fills
// Vp, so only a verbatim state copy is guaranteed to replay correctly.
func init() {
	register.RegisterStateCodec(register.StateCodec{
		Kind: "adaptive.state",
		Encode: func(s dsys.State) ([]byte, error) {
			st := s.(*objectState)
			var w register.WireWriter
			w.Int(st.index)
			w.TS(st.storedTS)
			w.Chunks(st.vp)
			w.Chunks(st.vf)
			return w.Finish(), nil
		},
		Decode: func(payload []byte) (dsys.State, error) {
			r := register.NewWireReader(payload)
			st := &objectState{index: r.Int(), storedTS: r.TS(), vp: r.Chunks(), vf: r.Chunks()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return st, nil
		},
	}, &objectState{})
}
