package adaptive

import (
	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// objectState is the state of one base object (Algorithm 1, lines 7-9).
type objectState struct {
	index    int // base-object index i (0-based); piece i+1 belongs here
	storedTS register.Timestamp
	vp       []register.Chunk // at most k pieces of distinct writes
	vf       []register.Chunk // full replica: k pieces sharing one timestamp
}

var _ dsys.State = (*objectState)(nil)

// Blocks implements dsys.State: every piece in Vp and Vf is charged;
// storedTS and the timestamps inside chunks are meta-data and are not.
func (s *objectState) Blocks() []dsys.BlockRef {
	refs := make([]dsys.BlockRef, 0, len(s.vp)+len(s.vf))
	for _, c := range s.vp {
		refs = append(refs, c.Ref())
	}
	for _, c := range s.vf {
		refs = append(refs, c.Ref())
	}
	return refs
}

// StoredTS exposes the object's storedTS for tests and experiments.
func (s *objectState) StoredTS() register.Timestamp { return s.storedTS }

// VpLen and VfLen expose the piece counts for tests and experiments.
func (s *objectState) VpLen() int { return len(s.vp) }

// VfLen reports the number of pieces in the full-replica field.
func (s *objectState) VfLen() int { return len(s.vf) }

// readValueResp is the response of the read round.
type readValueResp struct {
	StoredTS register.Timestamp
	Chunks   []register.Chunk
}

// readValueRMW reads storedTS, Vp and Vf without modifying the object
// (Algorithm 3, lines 25-28).
type readValueRMW struct{}

var _ dsys.RMW = (*readValueRMW)(nil)

// Apply implements dsys.RMW.
func (*readValueRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	all := make([]register.Chunk, 0, len(s.vp)+len(s.vf))
	all = append(all, s.vp...)
	all = append(all, s.vf...)
	return readValueResp{StoredTS: s.storedTS, Chunks: register.CloneChunks(all)}
}

// Blocks implements dsys.RMW: a read round carries no code blocks.
func (*readValueRMW) Blocks() []dsys.BlockRef { return nil }

// updateRMW is the second write round (Algorithm 3, lines 32-39): store the
// object's piece in Vp if there is room, otherwise fall back to storing a
// full replica in Vf, and propagate the caller's storedTS.
type updateRMW struct {
	k        int
	ts       register.Timestamp
	storedTS register.Timestamp
	piece    register.Chunk
	full     []register.Chunk
}

var _ dsys.RMW = (*updateRMW)(nil)

// Apply implements dsys.RMW.
func (u *updateRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	if u.ts.LessEq(s.storedTS) {
		// Lines 33-34: a newer write already completed its update round; this
		// write's value (or a newer one) is already durable, so ignore.
		return updateResp{Stored: false}
	}
	resp := updateResp{}
	switch {
	case len(s.vp) < u.k:
		// Lines 35-36: store the piece and drop pieces of writes older than
		// the caller's storedTS (they are superseded).
		kept := s.vp[:0]
		for _, c := range s.vp {
			if !c.TS.Less(u.storedTS) {
				kept = append(kept, c)
			}
		}
		s.vp = append(kept, u.piece)
		resp = updateResp{Stored: true, ToVp: true}
	case len(s.vf) == 0 || maxChunkTS(s.vf).Less(u.ts):
		// Lines 37-38: Vp is full; store a full replica if Vf is empty or
		// holds an older value.
		s.vf = register.CloneChunks(u.full)
		resp = updateResp{Stored: true, ToVp: false}
	}
	// Line 39: propagate the caller's storedTS.
	s.storedTS = s.storedTS.Max(u.storedTS)
	return resp
}

// Blocks implements dsys.RMW: the update carries the object's piece plus the
// k pieces of the full replica as parameters.
func (u *updateRMW) Blocks() []dsys.BlockRef {
	refs := make([]dsys.BlockRef, 0, 1+len(u.full))
	refs = append(refs, u.piece.Ref())
	for _, c := range u.full {
		refs = append(refs, c.Ref())
	}
	return refs
}

// seedUpdateRMW is updateRMW for reconfiguration seed writes: identical,
// except that an object already holding this exact seed piece (same fixed
// timestamp) leaves its state untouched, so a re-driven seed never consumes a
// second Vp slot with a duplicate.
type seedUpdateRMW struct {
	updateRMW
}

var _ dsys.RMW = (*seedUpdateRMW)(nil)

// Apply implements dsys.RMW.
func (u *seedUpdateRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	for _, c := range s.vp {
		if c.TS == u.ts && c.Block.Index == u.piece.Block.Index {
			return updateResp{Stored: false}
		}
	}
	return u.updateRMW.Apply(state)
}

// updateResp reports what the update round did; the writer does not depend on
// it, but tests and traces do.
type updateResp struct {
	Stored bool
	ToVp   bool
}

// gcRMW is the third write round (Algorithm 3, lines 40-45): drop everything
// older than ts, shrink a full replica of this very write down to the single
// piece that belongs on this object, and raise storedTS to ts.
type gcRMW struct {
	ts    register.Timestamp
	piece register.Chunk
}

var _ dsys.RMW = (*gcRMW)(nil)

// Apply implements dsys.RMW.
func (g *gcRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	keepVp := s.vp[:0]
	for _, c := range s.vp {
		if !c.TS.Less(g.ts) {
			keepVp = append(keepVp, c)
		}
	}
	s.vp = keepVp
	keepVf := s.vf[:0]
	for _, c := range s.vf {
		if !c.TS.Less(g.ts) {
			keepVf = append(keepVf, c)
		}
	}
	s.vf = keepVf
	// Lines 43-44: if Vf holds the full replica of this write, keep only the
	// single piece destined for this object.
	holdsMine := false
	for _, c := range s.vf {
		if c.TS == g.ts {
			holdsMine = true
			break
		}
	}
	if holdsMine {
		s.vf = []register.Chunk{g.piece}
	}
	s.storedTS = s.storedTS.Max(g.ts)
	return gcResp{}
}

// Blocks implements dsys.RMW: the GC round carries this object's piece (used
// to replace a full replica).
func (g *gcRMW) Blocks() []dsys.BlockRef { return []dsys.BlockRef{g.piece.Ref()} }

// gcResp is the (empty) response of the GC round.
type gcResp struct{}

// maxChunkTS returns the largest timestamp among chunks (ZeroTS when empty).
func maxChunkTS(chunks []register.Chunk) register.Timestamp {
	max := register.ZeroTS
	for _, c := range chunks {
		max = max.Max(c.TS)
	}
	return max
}
