package adaptive_test

import (
	"bytes"
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/value"
)

// TestStateCodecRoundTrip drives the snapshot path end to end: every base
// object's live state is encoded, decoded, re-encoded (byte-identical, so the
// codec is lossless), and installed into a fresh cluster that must then serve
// the written value.
func TestStateCodecRoundTrip(t *testing.T) {
	const dataLen = 16
	reg := newReg(t, 1, 2, dataLen)
	states, err := reg.InitialStates(value.Zero(dataLen))
	if err != nil {
		t.Fatal(err)
	}
	c := dsys.NewCluster(states, dsys.WithLiveMode())
	defer c.Close()
	want := value.FromString("adapt-codec-rt", dataLen)
	for i, v := range []value.Value{value.FromString("adapt-first", dataLen), want} {
		if err := c.RunScoped(i+1, 0, c.N(), func(h *dsys.ClientHandle) error {
			return reg.Write(h, v)
		}); err != nil {
			t.Fatal(err)
		}
	}

	fresh, err := reg.InitialStates(value.Zero(dataLen))
	if err != nil {
		t.Fatal(err)
	}
	c2 := dsys.NewCluster(fresh, dsys.WithLiveMode())
	defer c2.Close()
	for id := 0; id < c.N(); id++ {
		var kind string
		var payload []byte
		var encErr error
		if err := c.ReadObjectState(id, func(s dsys.State) {
			kind, payload, encErr = register.EncodeState(s)
		}); err != nil {
			t.Fatal(err)
		}
		if encErr != nil {
			t.Fatalf("object %d: EncodeState: %v", id, encErr)
		}
		if kind != "adaptive.state" {
			t.Fatalf("object %d: kind = %q", id, kind)
		}
		dec, err := register.DecodeState(kind, payload)
		if err != nil {
			t.Fatalf("object %d: DecodeState: %v", id, err)
		}
		kind2, payload2, err := register.EncodeState(dec)
		if err != nil || kind2 != kind || !bytes.Equal(payload, payload2) {
			t.Fatalf("object %d: re-encode diverged (kind %q, err %v)", id, kind2, err)
		}
		if err := c2.RestoreObjectState(id, dec); err != nil {
			t.Fatal(err)
		}
	}
	var got value.Value
	if err := c2.RunScoped(9, 0, c2.N(), func(h *dsys.ClientHandle) error {
		v, err := reg.Read(h)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("read from restored states = %q, want %q", got.Bytes(), want.Bytes())
	}
}
