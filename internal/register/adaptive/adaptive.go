// Package adaptive implements the paper's main algorithmic contribution
// (Section 5, Algorithms 1-3 and Appendices C-D): a strongly regular,
// FW-terminating MWMR register emulation that combines a k-of-n erasure code
// with full replication so that its storage cost is O(min(f, c) · D).
//
// Each base object bo_i holds three fields:
//
//   - Vp: a set of timestamped code pieces, at most one per write, capped at
//     k entries. While concurrency is below k the algorithm behaves like a
//     pure erasure-coded store.
//   - Vf: a full replica of a single value, represented as k pieces with one
//     timestamp. When Vp is full (concurrency at least k), writers fall back
//     to storing a full replica here — this is the replication end of the
//     trade-off, and it is what caps the per-object storage at O(D)
//     independently of the concurrency level.
//   - storedTS: the highest timestamp whose write is known to have completed
//     its update round; updates with timestamps at most storedTS are ignored
//     and stale pieces below it are garbage collected.
//
// A write performs three rounds (read-timestamp, update, garbage-collect),
// each waiting for n-f responses. A read repeatedly collects the contents of
// n-f objects until it sees k distinct pieces of a single value whose
// timestamp is at least the highest storedTS it observed, then decodes.
package adaptive

import (
	"fmt"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/value"
)

// DefaultReadRetryBudget bounds the number of read rounds before Read gives
// up with register.ErrReadStarved. FW-termination only promises that reads
// terminate in runs with finitely many writes; the budget keeps tests and
// experiments from spinning forever if that assumption is violated.
const DefaultReadRetryBudget = 10_000

// Register is the adaptive register emulation. It is stateless apart from its
// configuration: all mutable state lives in the base objects.
type Register struct {
	cfg             register.Config
	readRetryBudget int
}

var (
	_ register.Register   = (*Register)(nil)
	_ register.SeedWriter = (*Register)(nil)
)

// New builds an adaptive register for the given configuration.
func New(cfg register.Config) (*Register, error) {
	v, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Register{cfg: v, readRetryBudget: DefaultReadRetryBudget}, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return fmt.Sprintf("adaptive(f=%d,k=%d)", r.cfg.F, r.cfg.K) }

// Config implements register.Register.
func (r *Register) Config() register.Config { return r.cfg }

// SetReadRetryBudget overrides the read retry budget (tests use small values).
func (r *Register) SetReadRetryBudget(n int) { r.readRetryBudget = n }

// InitialStates implements register.Register: base object i starts with the
// i-th piece of v0 in Vp under the zero timestamp (Algorithm 1, line 9).
func (r *Register) InitialStates(v0 value.Value) ([]dsys.State, error) {
	chunks, err := register.InitialChunks(r.cfg, v0)
	if err != nil {
		return nil, err
	}
	states := make([]dsys.State, r.cfg.N())
	for i := 0; i < r.cfg.N(); i++ {
		states[i] = &objectState{
			index:    i,
			storedTS: register.ZeroTS,
			vp:       []register.Chunk{chunks[i]},
		}
	}
	return states, nil
}

// Write implements register.Register (Algorithm 2, lines 3-15).
func (r *Register) Write(h *dsys.ClientHandle, v value.Value) error {
	if v.SizeBytes() != r.cfg.DataLen {
		return fmt.Errorf("%w: value has %d bytes, config says %d", register.ErrConfig, v.SizeBytes(), r.cfg.DataLen)
	}
	op := h.BeginOp(dsys.OpWrite)
	defer h.EndOp()

	// Encode v into n pieces via the write oracle; the client holds the
	// WriteSet locally for the duration of the operation.
	writeSet, enc, err := register.EncodeWrite(r.cfg, op.WriteID(), v)
	if err != nil {
		return err
	}
	defer enc.Expire()
	h.SetLocalBlocks(register.ChunkRefs(writeSet))

	// Round 1: read timestamps (line 5-7).
	storedTS, readSet, err := readValue(h, r.cfg)
	if err != nil {
		return err
	}
	maxNum := storedTS.Num
	for _, c := range readSet {
		if c.TS.Num > maxNum {
			maxNum = c.TS.Num
		}
	}
	ts := register.Timestamp{Num: maxNum + 1, Client: h.ID()}
	for i := range writeSet {
		writeSet[i].TS = ts
	}
	full := register.CloneChunks(writeSet[:r.cfg.K])

	// Round 2: update (lines 8-10).
	if _, err := h.InvokeAll(func(obj int) dsys.RMW {
		return &updateRMW{
			k:        r.cfg.K,
			ts:       ts,
			storedTS: storedTS,
			piece:    writeSet[obj],
			full:     register.CloneChunks(full),
		}
	}, r.cfg.Quorum()); err != nil {
		return err
	}

	// Round 3: garbage collection (lines 11-13).
	if _, err := h.InvokeAll(func(obj int) dsys.RMW {
		return &gcRMW{ts: ts, piece: writeSet[obj]}
	}, r.cfg.Quorum()); err != nil {
		return err
	}
	return nil
}

// WriteSeed implements register.SeedWriter: update and GC rounds at the fixed
// register.SeedTS with no read round (the target is a fresh register whose
// writes are held, so the stored timestamp is known to be zero). The update
// uses a dedup-guarded RMW so that re-driving an interrupted seed over its own
// partial first attempt never stores a piece twice.
func (r *Register) WriteSeed(h *dsys.ClientHandle, v value.Value) error {
	op := h.BeginOp(dsys.OpWrite)
	defer h.EndOp()
	writeSet, enc, err := register.SeedChunks(r.cfg, op, v)
	if err != nil {
		return err
	}
	defer enc.Expire()
	h.SetLocalBlocks(register.ChunkRefs(writeSet))
	full := register.CloneChunks(writeSet[:r.cfg.K])
	if _, err := h.InvokeAll(func(obj int) dsys.RMW {
		return &seedUpdateRMW{updateRMW{
			k:        r.cfg.K,
			ts:       register.SeedTS,
			storedTS: register.ZeroTS,
			piece:    writeSet[obj],
			full:     register.CloneChunks(full),
		}}
	}, r.cfg.Quorum()); err != nil {
		return err
	}
	_, err = h.InvokeAll(func(obj int) dsys.RMW {
		return &gcRMW{ts: register.SeedTS, piece: writeSet[obj]}
	}, r.cfg.Quorum())
	return err
}

// Read implements register.Register (Algorithm 2, lines 16-22).
func (r *Register) Read(h *dsys.ClientHandle) (value.Value, error) {
	v, _, err := r.ReadTimestamped(h)
	return v, err
}

// ReadTimestamped implements register.TimestampedReader: the same read loop,
// additionally reporting the timestamp of the decoded value.
func (r *Register) ReadTimestamped(h *dsys.ClientHandle) (value.Value, register.Timestamp, error) {
	h.BeginOp(dsys.OpRead)
	defer h.EndOp()

	for attempt := 0; attempt < r.readRetryBudget; attempt++ {
		storedTS, readSet, err := readValue(h, r.cfg)
		if err != nil {
			return value.Value{}, register.ZeroTS, err
		}
		if chunks, ts, ok := register.BestDecodable(readSet, storedTS, r.cfg.K); ok {
			v, err := register.DecodeChunks(r.cfg, chunks)
			return v, ts, err
		}
	}
	return value.Value{}, register.ZeroTS, register.ErrReadStarved
}

// readValue is the shared read round (Algorithm 3, lines 23-31): it collects
// Vp, Vf and storedTS from n-f base objects and returns the highest observed
// storedTS together with the union of the collected chunks.
func readValue(h *dsys.ClientHandle, cfg register.Config) (register.Timestamp, []register.Chunk, error) {
	resp, err := h.InvokeAll(func(obj int) dsys.RMW { return &readValueRMW{} }, cfg.Quorum())
	if err != nil {
		return register.ZeroTS, nil, err
	}
	maxTS := register.ZeroTS
	var readSet []register.Chunk
	// Iterate objects in ID order for determinism.
	for obj := 0; obj < cfg.N(); obj++ {
		raw, ok := resp[obj]
		if !ok {
			continue
		}
		rv, ok := raw.(readValueResp)
		if !ok {
			return register.ZeroTS, nil, fmt.Errorf("adaptive: unexpected readValue response %T", raw)
		}
		maxTS = maxTS.Max(rv.StoredTS)
		readSet = append(readSet, rv.Chunks...)
	}
	return maxTS, readSet, nil
}
