package erasure

import (
	"fmt"

	"spacebounds/internal/gf256"
)

// XORParity is an (n-1)-of-n parity code: blocks 1..n-1 are the data shards
// and block n is their XOR. It tolerates a single erasure with the minimum
// possible redundancy, matching the introduction's single-failure example of
// (k+2)D/k storage with k = n-2 objects of data plus parity.
type XORParity struct {
	n int
}

var _ Code = (*XORParity)(nil)

// NewXORParity constructs an (n-1)-of-n XOR parity code. n must be at least 2.
func NewXORParity(n int) (*XORParity, error) {
	if n < 2 {
		return nil, fmt.Errorf("erasure: XOR parity needs n >= 2, got %d", n)
	}
	return &XORParity{n: n}, nil
}

// MustXORParity is NewXORParity for statically known parameters; it panics on
// invalid input.
func MustXORParity(n int) *XORParity {
	c, err := NewXORParity(n)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Code.
func (x *XORParity) Name() string { return fmt.Sprintf("xor(%d,%d)", x.n-1, x.n) }

// K implements Code.
func (x *XORParity) K() int { return x.n - 1 }

// N implements Code.
func (x *XORParity) N() int { return x.n }

// BlockSizeBytes implements Code.
func (x *XORParity) BlockSizeBytes(dataLen, index int) int {
	return shardLen(dataLen, x.n-1)
}

// Encode implements Code.
func (x *XORParity) Encode(data []byte) ([]Block, error) {
	k := x.n - 1
	shards := splitShards(data, k)
	parity := make([]byte, shardLen(len(data), k))
	for _, s := range shards {
		gf256.AddSlice(parity, s)
	}
	blocks := make([]Block, x.n)
	for i := 0; i < k; i++ {
		blocks[i] = Block{Index: i + 1, Data: shards[i]}
	}
	blocks[k] = Block{Index: x.n, Data: parity}
	return blocks, nil
}

// EncodeBlock implements Code.
func (x *XORParity) EncodeBlock(data []byte, index int) (Block, error) {
	if index < 1 || index > x.n {
		return Block{}, fmt.Errorf("%w: %d not in [1,%d]", ErrBlockIndex, index, x.n)
	}
	blocks, err := x.Encode(data)
	if err != nil {
		return Block{}, err
	}
	return blocks[index-1], nil
}

// Decode implements Code: with all n-1 data shards present the value is their
// concatenation; with one data shard missing it is recovered from the parity.
func (x *XORParity) Decode(dataLen int, blocks []Block) ([]byte, error) {
	k := x.n - 1
	distinct := DistinctBlocks(blocks)
	if len(distinct) < k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughBlocks, len(distinct), k)
	}
	sl := shardLen(dataLen, k)
	byIndex := make(map[int][]byte, len(distinct))
	for _, b := range distinct {
		if b.Index < 1 || b.Index > x.n {
			return nil, fmt.Errorf("%w: %d not in [1,%d]", ErrBlockIndex, b.Index, x.n)
		}
		if len(b.Data) != sl {
			return nil, fmt.Errorf("%w: block %d has %d bytes, want %d", ErrBlockSize, b.Index, len(b.Data), sl)
		}
		byIndex[b.Index] = b.Data
	}
	shards := make([][]byte, k)
	missing := -1
	for i := 1; i <= k; i++ {
		if d, ok := byIndex[i]; ok {
			shards[i-1] = d
			continue
		}
		if missing != -1 {
			return nil, fmt.Errorf("%w: two data shards missing", ErrNotEnoughBlocks)
		}
		missing = i - 1
	}
	if missing != -1 {
		parity, ok := byIndex[x.n]
		if !ok {
			return nil, fmt.Errorf("%w: missing data shard %d and no parity", ErrNotEnoughBlocks, missing+1)
		}
		rec := make([]byte, sl)
		copy(rec, parity)
		for i, s := range shards {
			if i == missing {
				continue
			}
			gf256.AddSlice(rec, s)
		}
		shards[missing] = rec
	}
	return joinShards(shards, dataLen), nil
}
