package erasure

import "fmt"

// Replication is the degenerate 1-of-n code in which every block is a full
// copy of the value. The paper's adaptive algorithm with k = 1 reduces to
// this scheme, and it is the coding scheme used by the ABD baseline.
type Replication struct {
	n int
}

var _ Code = (*Replication)(nil)

// NewReplication constructs a replication "code" producing n identical
// blocks. It returns an error if n < 1.
func NewReplication(n int) (*Replication, error) {
	if n < 1 {
		return nil, fmt.Errorf("erasure: invalid replication factor %d", n)
	}
	return &Replication{n: n}, nil
}

// MustReplication is NewReplication for statically known parameters; it
// panics on invalid input.
func MustReplication(n int) *Replication {
	r, err := NewReplication(n)
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements Code.
func (r *Replication) Name() string { return fmt.Sprintf("repl(%d)", r.n) }

// K implements Code: a single block suffices to decode.
func (r *Replication) K() int { return 1 }

// N implements Code.
func (r *Replication) N() int { return r.n }

// BlockSizeBytes implements Code: every block is a full replica.
func (r *Replication) BlockSizeBytes(dataLen, index int) int { return dataLen }

// Encode implements Code.
func (r *Replication) Encode(data []byte) ([]Block, error) {
	blocks := make([]Block, r.n)
	for i := 0; i < r.n; i++ {
		d := make([]byte, len(data))
		copy(d, data)
		blocks[i] = Block{Index: i + 1, Data: d}
	}
	return blocks, nil
}

// EncodeBlock implements Code. Replication is rateless in the trivial sense:
// any positive index yields a full copy.
func (r *Replication) EncodeBlock(data []byte, index int) (Block, error) {
	if index < 1 {
		return Block{}, fmt.Errorf("%w: %d must be positive", ErrBlockIndex, index)
	}
	d := make([]byte, len(data))
	copy(d, data)
	return Block{Index: index, Data: d}, nil
}

// Decode implements Code: any single block is the value.
func (r *Replication) Decode(dataLen int, blocks []Block) ([]byte, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("%w: have 0, need 1", ErrNotEnoughBlocks)
	}
	b := blocks[0]
	if len(b.Data) != dataLen {
		return nil, fmt.Errorf("%w: block %d has %d bytes, want %d", ErrBlockSize, b.Index, len(b.Data), dataLen)
	}
	out := make([]byte, dataLen)
	copy(out, b.Data)
	return out, nil
}
