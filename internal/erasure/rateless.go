package erasure

import (
	"fmt"

	"spacebounds/internal/gf256"
)

// Rateless is a linear code over GF(2^8) that can generate a block for any
// index in N, capturing the paper's remark that the oracle model covers
// rateless codes [13]. Block i is a linear combination of the k data shards
// with a coefficient vector derived deterministically from i (a Vandermonde
// row), so the same (value, index) pair always yields the same block — as
// required of the encoding function E : V x N -> E. Each block carries its
// coefficient vector, so decoding is self-describing: gather blocks until k
// of them have linearly independent coefficients and solve the system. Any k
// blocks whose indices are distinct modulo 255 are guaranteed decodable.
type Rateless struct {
	k, n int
	seed int64
}

var _ Code = (*Rateless)(nil)

// NewRateless constructs a rateless code with decode threshold k and nominal
// width n (the number of blocks Encode emits; EncodeBlock accepts any index).
func NewRateless(k, n int, seed int64) (*Rateless, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("erasure: invalid rateless parameters k=%d n=%d", k, n)
	}
	return &Rateless{k: k, n: n, seed: seed}, nil
}

// MustRateless is NewRateless for statically known parameters; it panics on
// invalid input.
func MustRateless(k, n int, seed int64) *Rateless {
	c, err := NewRateless(k, n, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Code.
func (rl *Rateless) Name() string { return fmt.Sprintf("rateless(%d,%d)", rl.k, rl.n) }

// K implements Code.
func (rl *Rateless) K() int { return rl.k }

// N implements Code.
func (rl *Rateless) N() int { return rl.n }

// BlockSizeBytes implements Code. Each block carries its coefficient vector
// (k bytes) followed by the combined shard, so the size depends only on the
// index and the domain size — the code remains symmetric.
func (rl *Rateless) BlockSizeBytes(dataLen, index int) int {
	return rl.k + shardLen(dataLen, rl.k)
}

// coefficients returns the deterministic coefficient vector for a block
// index: the Vandermonde row evaluated at alpha = g^((index-1) mod 255),
// where g is the field generator. Any k blocks whose indices are distinct
// modulo 255 therefore have an invertible coefficient matrix; the optional
// seed perturbs the evaluation point so independently-seeded encoders emit
// different (but still mutually decodable within one encoder) block streams.
func (rl *Rateless) coefficients(index int) []byte {
	coeffs := make([]byte, rl.k)
	point := (uint64(index-1) + uint64(rl.seed&0x7fffffff)) % 255
	alpha := gf256.PowGenerator(int(point))
	for j := range coeffs {
		coeffs[j] = gf256.Exp(alpha, j)
	}
	return coeffs
}

// Encode implements Code.
func (rl *Rateless) Encode(data []byte) ([]Block, error) {
	blocks := make([]Block, rl.n)
	for i := 1; i <= rl.n; i++ {
		b, err := rl.EncodeBlock(data, i)
		if err != nil {
			return nil, err
		}
		blocks[i-1] = b
	}
	return blocks, nil
}

// EncodeBlock implements Code and accepts any positive index, which is what
// makes the code rateless.
func (rl *Rateless) EncodeBlock(data []byte, index int) (Block, error) {
	if index < 1 {
		return Block{}, fmt.Errorf("%w: %d must be positive", ErrBlockIndex, index)
	}
	shards := splitShards(data, rl.k)
	coeffs := rl.coefficients(index)
	payload := make([]byte, shardLen(len(data), rl.k))
	for i, c := range coeffs {
		gf256.MulAddSlice(c, payload, shards[i])
	}
	out := make([]byte, 0, rl.k+len(payload))
	out = append(out, coeffs...)
	out = append(out, payload...)
	return Block{Index: index, Data: out}, nil
}

// Decode implements Code.
func (rl *Rateless) Decode(dataLen int, blocks []Block) ([]byte, error) {
	distinct := DistinctBlocks(blocks)
	if len(distinct) < rl.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughBlocks, len(distinct), rl.k)
	}
	sl := shardLen(dataLen, rl.k)
	wantLen := rl.k + sl
	// Greedily build an invertible k-by-k coefficient matrix by Gaussian
	// elimination over the candidate rows.
	chosenRows := make([][]byte, 0, rl.k)
	chosenPayloads := make([][]byte, 0, rl.k)
	basis := make([][]byte, 0, rl.k) // reduced copies used for the independence test
	for _, b := range distinct {
		if len(b.Data) != wantLen {
			return nil, fmt.Errorf("%w: block %d has %d bytes, want %d", ErrBlockSize, b.Index, len(b.Data), wantLen)
		}
		coeffs := append([]byte(nil), b.Data[:rl.k]...)
		reduced := append([]byte(nil), coeffs...)
		for _, row := range basis {
			pivot := leadingIndex(row)
			if pivot >= 0 && reduced[pivot] != 0 {
				gf256.MulAddSlice(gf256.Div(reduced[pivot], row[pivot]), reduced, row)
			}
		}
		if leadingIndex(reduced) < 0 {
			continue // linearly dependent on rows already chosen
		}
		basis = append(basis, reduced)
		chosenRows = append(chosenRows, coeffs)
		chosenPayloads = append(chosenPayloads, b.Data[rl.k:])
		if len(chosenRows) == rl.k {
			break
		}
	}
	if len(chosenRows) < rl.k {
		return nil, fmt.Errorf("%w: only %d linearly independent blocks of %d required", ErrNotEnoughBlocks, len(chosenRows), rl.k)
	}
	m, err := gf256.NewMatrixFromRows(chosenRows)
	if err != nil {
		return nil, fmt.Errorf("erasure: rateless decode: %w", err)
	}
	inv, err := m.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: rateless decode: %w", err)
	}
	shards, err := inv.MulVec(chosenPayloads)
	if err != nil {
		return nil, fmt.Errorf("erasure: rateless decode: %w", err)
	}
	return joinShards(shards, dataLen), nil
}

// leadingIndex returns the index of the first non-zero byte, or -1 if all
// bytes are zero.
func leadingIndex(row []byte) int {
	for i, v := range row {
		if v != 0 {
			return i
		}
	}
	return -1
}
