package erasure

import (
	"fmt"

	"spacebounds/internal/gf256"
)

// ReedSolomon is a systematic-free k-of-n erasure code over GF(2^8) built
// from a Vandermonde generator matrix: block i is the i-th row of the
// Vandermonde matrix applied to the k data shards. Any k distinct blocks
// determine the value, which is exactly the decode function D of Section 3.
type ReedSolomon struct {
	k, n   int
	matrix *gf256.Matrix
}

var _ Code = (*ReedSolomon)(nil)

// NewReedSolomon constructs a k-of-n Reed-Solomon code. It returns an error
// if the parameters are out of range (1 <= k <= n <= 255).
func NewReedSolomon(k, n int) (*ReedSolomon, error) {
	if k < 1 || n < k || n > 255 {
		return nil, fmt.Errorf("erasure: invalid Reed-Solomon parameters k=%d n=%d", k, n)
	}
	return &ReedSolomon{k: k, n: n, matrix: gf256.Vandermonde(n, k)}, nil
}

// MustReedSolomon is NewReedSolomon for statically known parameters; it
// panics on invalid input and is intended for tests and examples.
func MustReedSolomon(k, n int) *ReedSolomon {
	rs, err := NewReedSolomon(k, n)
	if err != nil {
		panic(err)
	}
	return rs
}

// Name implements Code.
func (rs *ReedSolomon) Name() string { return fmt.Sprintf("rs(%d,%d)", rs.k, rs.n) }

// K implements Code.
func (rs *ReedSolomon) K() int { return rs.k }

// N implements Code.
func (rs *ReedSolomon) N() int { return rs.n }

// BlockSizeBytes implements Code: every block is one shard of ceil(D/k) bytes.
func (rs *ReedSolomon) BlockSizeBytes(dataLen, index int) int {
	return shardLen(dataLen, rs.k)
}

// Encode implements Code.
func (rs *ReedSolomon) Encode(data []byte) ([]Block, error) {
	shards := splitShards(data, rs.k)
	coded, err := rs.matrix.MulVec(shards)
	if err != nil {
		return nil, fmt.Errorf("erasure: rs encode: %w", err)
	}
	blocks := make([]Block, rs.n)
	for i := 0; i < rs.n; i++ {
		blocks[i] = Block{Index: i + 1, Data: coded[i]}
	}
	return blocks, nil
}

// EncodeBlock implements Code.
func (rs *ReedSolomon) EncodeBlock(data []byte, index int) (Block, error) {
	if index < 1 || index > rs.n {
		return Block{}, fmt.Errorf("%w: %d not in [1,%d]", ErrBlockIndex, index, rs.n)
	}
	shards := splitShards(data, rs.k)
	out := make([]byte, shardLen(len(data), rs.k))
	row := rs.matrix.Row(index - 1)
	for c := 0; c < rs.k; c++ {
		gf256.MulAddSlice(row[c], out, shards[c])
	}
	return Block{Index: index, Data: out}, nil
}

// Decode implements Code. It reconstructs the original dataLen bytes from any
// k distinct blocks by inverting the corresponding k-by-k Vandermonde
// submatrix.
func (rs *ReedSolomon) Decode(dataLen int, blocks []Block) ([]byte, error) {
	distinct := DistinctBlocks(blocks)
	if len(distinct) < rs.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughBlocks, len(distinct), rs.k)
	}
	sl := shardLen(dataLen, rs.k)
	rows := make([]int, 0, rs.k)
	coded := make([][]byte, 0, rs.k)
	for _, b := range distinct {
		if b.Index < 1 || b.Index > rs.n {
			return nil, fmt.Errorf("%w: %d not in [1,%d]", ErrBlockIndex, b.Index, rs.n)
		}
		if len(b.Data) != sl {
			return nil, fmt.Errorf("%w: block %d has %d bytes, want %d", ErrBlockSize, b.Index, len(b.Data), sl)
		}
		rows = append(rows, b.Index-1)
		coded = append(coded, b.Data)
		if len(rows) == rs.k {
			break
		}
	}
	sub := rs.matrix.SubMatrix(rows)
	inv, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: rs decode: %w", err)
	}
	shards, err := inv.MulVec(coded)
	if err != nil {
		return nil, fmt.Errorf("erasure: rs decode: %w", err)
	}
	return joinShards(shards, dataLen), nil
}
