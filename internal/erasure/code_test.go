package erasure

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// allCodes returns one instance of every implemented code with the given
// decode threshold k and width n (replication ignores k).
func allCodes(t *testing.T, k, n int) []Code {
	t.Helper()
	rs, err := NewReedSolomon(k, n)
	if err != nil {
		t.Fatalf("NewReedSolomon(%d,%d): %v", k, n, err)
	}
	repl, err := NewReplication(n)
	if err != nil {
		t.Fatalf("NewReplication(%d): %v", n, err)
	}
	xorc, err := NewXORParity(n)
	if err != nil {
		t.Fatalf("NewXORParity(%d): %v", n, err)
	}
	rl, err := NewRateless(k, n, 12345)
	if err != nil {
		t.Fatalf("NewRateless(%d,%d): %v", k, n, err)
	}
	return []Code{rs, repl, xorc, rl}
}

func TestEncodeDecodeRoundTripAllCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range allCodes(t, 3, 7) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for _, dataLen := range []int{1, 3, 16, 100, 1024, 4096} {
				data := make([]byte, dataLen)
				if _, err := rng.Read(data); err != nil {
					t.Fatalf("rand: %v", err)
				}
				blocks, err := c.Encode(data)
				if err != nil {
					t.Fatalf("Encode(%d bytes): %v", dataLen, err)
				}
				if len(blocks) != c.N() {
					t.Fatalf("Encode produced %d blocks, want %d", len(blocks), c.N())
				}
				got, err := c.Decode(dataLen, blocks)
				if err != nil {
					t.Fatalf("Decode(%d bytes): %v", dataLen, err)
				}
				if string(got) != string(data) {
					t.Fatalf("round trip mismatch for %d bytes", dataLen)
				}
			}
		})
	}
}

func TestDecodeFromAnyKSubset(t *testing.T) {
	const dataLen = 257
	rng := rand.New(rand.NewSource(23))
	data := make([]byte, dataLen)
	if _, err := rng.Read(data); err != nil {
		t.Fatalf("rand: %v", err)
	}
	for _, c := range allCodes(t, 3, 7) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			blocks, err := c.Encode(data)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			for trial := 0; trial < 50; trial++ {
				perm := rng.Perm(len(blocks))[:c.K()]
				subset := make([]Block, 0, c.K())
				for _, i := range perm {
					subset = append(subset, blocks[i])
				}
				got, err := c.Decode(dataLen, subset)
				if err != nil {
					t.Fatalf("Decode from subset %v: %v", perm, err)
				}
				if string(got) != string(data) {
					t.Fatalf("Decode from subset %v returned wrong value", perm)
				}
			}
		})
	}
}

func TestDecodeInsufficientBlocks(t *testing.T) {
	data := []byte("a value that needs protecting")
	for _, c := range allCodes(t, 4, 9) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			blocks, err := c.Encode(data)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			_, err = c.Decode(len(data), blocks[:c.K()-1])
			if !errors.Is(err, ErrNotEnoughBlocks) {
				t.Fatalf("Decode with %d blocks returned %v, want ErrNotEnoughBlocks", c.K()-1, err)
			}
		})
	}
}

func TestDuplicateBlocksDoNotHelp(t *testing.T) {
	data := []byte("duplicate detection")
	for _, c := range allCodes(t, 3, 5) {
		if c.K() == 1 {
			continue // replication decodes from one block by design
		}
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			blocks, err := c.Encode(data)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			dups := []Block{blocks[0], blocks[0], blocks[0], blocks[0]}
			if _, err := c.Decode(len(data), dups); !errors.Is(err, ErrNotEnoughBlocks) {
				t.Fatalf("Decode from duplicates returned %v, want ErrNotEnoughBlocks", err)
			}
		})
	}
}

func TestSymmetryAllCodes(t *testing.T) {
	for _, c := range allCodes(t, 3, 7) {
		if err := CheckSymmetry(c, 500); err != nil {
			t.Errorf("CheckSymmetry(%s): %v", c.Name(), err)
		}
	}
	if err := CheckSymmetry(MustReedSolomon(2, 4), 0); err == nil {
		t.Error("CheckSymmetry accepted non-positive data length")
	}
}

func TestEncodeBlockMatchesEncode(t *testing.T) {
	data := []byte("per-block oracle access must match bulk encoding output.")
	for _, c := range allCodes(t, 3, 6) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			blocks, err := c.Encode(data)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			for _, want := range blocks {
				got, err := c.EncodeBlock(data, want.Index)
				if err != nil {
					t.Fatalf("EncodeBlock(%d): %v", want.Index, err)
				}
				if string(got.Data) != string(want.Data) {
					t.Fatalf("EncodeBlock(%d) differs from Encode output", want.Index)
				}
			}
		})
	}
}

func TestBlockSizeAccounting(t *testing.T) {
	const dataLen = 1000
	rs := MustReedSolomon(4, 10)
	if sz := rs.BlockSizeBytes(dataLen, 1); sz != 250 {
		t.Fatalf("rs block size = %d, want 250", sz)
	}
	if total := TotalEncodedBits(rs, dataLen); total != 10*250*8 {
		t.Fatalf("rs total bits = %d, want %d", total, 10*250*8)
	}
	repl := MustReplication(3)
	if total := TotalEncodedBits(repl, dataLen); total != 3*8*dataLen {
		t.Fatalf("replication total bits = %d, want %d", total, 3*8*dataLen)
	}
}

func TestBlockSizeBits(t *testing.T) {
	b := Block{Index: 1, Data: make([]byte, 17)}
	if b.SizeBits() != 136 {
		t.Fatalf("SizeBits = %d, want 136", b.SizeBits())
	}
	c := b.Clone()
	c.Data[0] = 0xFF
	if b.Data[0] == 0xFF {
		t.Fatal("Clone shares storage")
	}
}

func TestDistinctBlocks(t *testing.T) {
	in := []Block{{Index: 2}, {Index: 1}, {Index: 2}, {Index: 3}, {Index: 1}}
	out := DistinctBlocks(in)
	if len(out) != 3 {
		t.Fatalf("DistinctBlocks returned %d blocks, want 3", len(out))
	}
	if out[0].Index != 2 || out[1].Index != 1 || out[2].Index != 3 {
		t.Fatalf("DistinctBlocks did not preserve first-occurrence order: %v", out)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewReedSolomon(0, 5); err == nil {
		t.Error("NewReedSolomon accepted k=0")
	}
	if _, err := NewReedSolomon(6, 5); err == nil {
		t.Error("NewReedSolomon accepted k>n")
	}
	if _, err := NewReedSolomon(2, 256); err == nil {
		t.Error("NewReedSolomon accepted n>255")
	}
	if _, err := NewReplication(0); err == nil {
		t.Error("NewReplication accepted n=0")
	}
	if _, err := NewXORParity(1); err == nil {
		t.Error("NewXORParity accepted n=1")
	}
	if _, err := NewRateless(0, 3, 1); err == nil {
		t.Error("NewRateless accepted k=0")
	}
	if _, err := NewRateless(4, 3, 1); err == nil {
		t.Error("NewRateless accepted k>n")
	}
}

func TestMustConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"MustReedSolomon": func() { MustReedSolomon(0, 1) },
		"MustReplication": func() { MustReplication(0) },
		"MustXORParity":   func() { MustXORParity(1) },
		"MustRateless":    func() { MustRateless(0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with invalid parameters did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEncodeBlockIndexValidation(t *testing.T) {
	data := []byte("x")
	rs := MustReedSolomon(2, 4)
	if _, err := rs.EncodeBlock(data, 0); !errors.Is(err, ErrBlockIndex) {
		t.Errorf("rs EncodeBlock(0) err = %v, want ErrBlockIndex", err)
	}
	if _, err := rs.EncodeBlock(data, 5); !errors.Is(err, ErrBlockIndex) {
		t.Errorf("rs EncodeBlock(5) err = %v, want ErrBlockIndex", err)
	}
	xorc := MustXORParity(4)
	if _, err := xorc.EncodeBlock(data, 9); !errors.Is(err, ErrBlockIndex) {
		t.Errorf("xor EncodeBlock(9) err = %v, want ErrBlockIndex", err)
	}
	repl := MustReplication(2)
	if _, err := repl.EncodeBlock(data, -1); !errors.Is(err, ErrBlockIndex) {
		t.Errorf("repl EncodeBlock(-1) err = %v, want ErrBlockIndex", err)
	}
	rl := MustRateless(2, 4, 1)
	if _, err := rl.EncodeBlock(data, 0); !errors.Is(err, ErrBlockIndex) {
		t.Errorf("rateless EncodeBlock(0) err = %v, want ErrBlockIndex", err)
	}
}

func TestDecodeWrongBlockSize(t *testing.T) {
	data := []byte("size validation for decode paths")
	for _, c := range allCodes(t, 3, 6) {
		blocks, err := c.Encode(data)
		if err != nil {
			t.Fatalf("%s Encode: %v", c.Name(), err)
		}
		blocks[0].Data = append(blocks[0].Data, 0xAA)
		if _, err := c.Decode(len(data), blocks); !errors.Is(err, ErrBlockSize) {
			t.Errorf("%s Decode with oversized block returned %v, want ErrBlockSize", c.Name(), err)
		}
	}
}

// TestReedSolomonQuick is a property-based round-trip over random payloads
// and random k-subsets of blocks.
func TestReedSolomonQuick(t *testing.T) {
	rs := MustReedSolomon(3, 8)
	rng := rand.New(rand.NewSource(99))
	prop := func(data []byte) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		blocks, err := rs.Encode(data)
		if err != nil {
			return false
		}
		perm := rng.Perm(len(blocks))[:rs.K()]
		subset := make([]Block, 0, rs.K())
		for _, i := range perm {
			subset = append(subset, blocks[i])
		}
		got, err := rs.Decode(len(data), subset)
		if err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Errorf("Reed-Solomon round-trip property failed: %v", err)
	}
}

// TestRatelessHighIndices exercises indices beyond the nominal width n, the
// defining capability of a rateless code.
func TestRatelessHighIndices(t *testing.T) {
	rl := MustRateless(4, 6, 7)
	data := []byte("rateless codes can mint blocks for arbitrary indices in N")
	blocks := make([]Block, 0, 4)
	for _, idx := range []int{100, 2000, 31337, 500000} {
		b, err := rl.EncodeBlock(data, idx)
		if err != nil {
			t.Fatalf("EncodeBlock(%d): %v", idx, err)
		}
		blocks = append(blocks, b)
	}
	got, err := rl.Decode(len(data), blocks)
	if err != nil {
		t.Fatalf("Decode from high-index blocks: %v", err)
	}
	if string(got) != string(data) {
		t.Fatal("Decode from high-index blocks returned wrong value")
	}
}

func TestXORParitySingleErasure(t *testing.T) {
	xorc := MustXORParity(5)
	data := []byte("parity protects against exactly one missing shard")
	blocks, err := xorc.Encode(data)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for drop := 0; drop < len(blocks); drop++ {
		subset := make([]Block, 0, len(blocks)-1)
		for i, b := range blocks {
			if i != drop {
				subset = append(subset, b)
			}
		}
		got, err := xorc.Decode(len(data), subset)
		if err != nil {
			t.Fatalf("Decode with block %d dropped: %v", drop+1, err)
		}
		if string(got) != string(data) {
			t.Fatalf("Decode with block %d dropped returned wrong value", drop+1)
		}
	}
}
