// Package erasure implements the symmetric black-box coding schemes of the
// paper (Section 3): replication, k-of-n Reed-Solomon erasure codes, an XOR
// parity code, and a rateless random-linear code.
//
// All codes implement the Code interface and satisfy the paper's symmetric
// encoding assumption (Definition 3): the size of block i depends only on i
// and on the domain size D, never on the encoded value. The register
// emulations in internal/register treat codes strictly as black boxes — they
// store and move blocks but never inspect their contents — which is the
// setting in which the paper's lower bound applies.
package erasure

import (
	"errors"
	"fmt"
)

// Block is a single code block: the output of the encoding function
// E(v, Index). Index is 1-based, matching the paper's block numbering.
type Block struct {
	// Index is the block number i such that Data = E(v, i).
	Index int
	// Data is the block contents.
	Data []byte
}

// SizeBits returns the number of bits in the block, the quantity the storage
// cost model counts (Definition 2).
func (b Block) SizeBits() int { return 8 * len(b.Data) }

// Clone returns a deep copy of the block.
func (b Block) Clone() Block {
	d := make([]byte, len(b.Data))
	copy(d, b.Data)
	return Block{Index: b.Index, Data: d}
}

// Errors shared by the code implementations.
var (
	// ErrNotEnoughBlocks is returned by Decode when fewer than k distinct
	// blocks are supplied; it corresponds to the oracle returning ⊥.
	ErrNotEnoughBlocks = errors.New("erasure: not enough distinct blocks to decode")
	// ErrBlockIndex is returned when a block index is outside the code's range.
	ErrBlockIndex = errors.New("erasure: block index out of range")
	// ErrBlockSize is returned when a supplied block has an unexpected size.
	ErrBlockSize = errors.New("erasure: block has unexpected size")
)

// Code is a symmetric coding scheme over the value domain.
//
// K is the number of distinct blocks sufficient (and necessary) to decode;
// N is the number of distinct block indexes the scheme natively produces —
// one per base object in the register emulations. Rateless codes can produce
// blocks for any index via EncodeBlock, but still advertise a nominal N.
type Code interface {
	// Name identifies the scheme, e.g. "rs(3,7)".
	Name() string
	// K returns the decode threshold.
	K() int
	// N returns the nominal number of distinct blocks produced by Encode.
	N() int
	// BlockSizeBytes returns the size of block index for a value of dataLen
	// bytes. Symmetry (Definition 3) means the result is independent of the
	// value itself.
	BlockSizeBytes(dataLen, index int) int
	// Encode produces blocks 1..N for the given data.
	Encode(data []byte) ([]Block, error)
	// EncodeBlock produces the single block with the given index; it is the
	// oracle's get(i) operation (Definition 1).
	EncodeBlock(data []byte, index int) (Block, error)
	// Decode reconstructs a dataLen-byte value from at least K distinct
	// blocks, or returns ErrNotEnoughBlocks (the oracle's ⊥).
	Decode(dataLen int, blocks []Block) ([]byte, error)
}

// DistinctBlocks filters blocks to one per index, preserving first
// occurrence order. Register algorithms use it before attempting a decode.
func DistinctBlocks(blocks []Block) []Block {
	seen := make(map[int]bool, len(blocks))
	out := make([]Block, 0, len(blocks))
	for _, b := range blocks {
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		out = append(out, b)
	}
	return out
}

// CheckSymmetry verifies Definition 3 empirically for a code: it encodes two
// different values of the same length and checks that every block index has
// the same size in both encodings. Register constructors call it once at
// setup so a non-conforming code is rejected early.
func CheckSymmetry(c Code, dataLen int) error {
	if dataLen <= 0 {
		return fmt.Errorf("erasure: CheckSymmetry requires positive data length, got %d", dataLen)
	}
	a := make([]byte, dataLen)
	b := make([]byte, dataLen)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	blocksA, err := c.Encode(a)
	if err != nil {
		return fmt.Errorf("erasure: CheckSymmetry encode: %w", err)
	}
	blocksB, err := c.Encode(b)
	if err != nil {
		return fmt.Errorf("erasure: CheckSymmetry encode: %w", err)
	}
	if len(blocksA) != len(blocksB) {
		return fmt.Errorf("erasure: code %s produced %d and %d blocks for equal-size values", c.Name(), len(blocksA), len(blocksB))
	}
	for i := range blocksA {
		if len(blocksA[i].Data) != len(blocksB[i].Data) {
			return fmt.Errorf("erasure: code %s block %d size depends on value (%d vs %d bytes)",
				c.Name(), blocksA[i].Index, len(blocksA[i].Data), len(blocksB[i].Data))
		}
		if sz := c.BlockSizeBytes(dataLen, blocksA[i].Index); sz != len(blocksA[i].Data) {
			return fmt.Errorf("erasure: code %s BlockSizeBytes(%d, %d) = %d but Encode produced %d bytes",
				c.Name(), dataLen, blocksA[i].Index, sz, len(blocksA[i].Data))
		}
	}
	return nil
}

// TotalEncodedBits returns the total number of bits across all N blocks of a
// dataLen-byte value; experiments use it to express analytic storage bounds.
func TotalEncodedBits(c Code, dataLen int) int {
	total := 0
	for i := 1; i <= c.N(); i++ {
		total += 8 * c.BlockSizeBytes(dataLen, i)
	}
	return total
}

// shardLen returns the per-shard length when splitting dataLen bytes into k
// equal shards, padding the tail shard with zeros.
func shardLen(dataLen, k int) int {
	return (dataLen + k - 1) / k
}

// splitShards splits data into k shards of equal length, zero-padding the
// last shard. The returned shards reference freshly allocated memory.
func splitShards(data []byte, k int) [][]byte {
	sl := shardLen(len(data), k)
	shards := make([][]byte, k)
	for i := 0; i < k; i++ {
		shards[i] = make([]byte, sl)
		start := i * sl
		if start >= len(data) {
			continue
		}
		end := start + sl
		if end > len(data) {
			end = len(data)
		}
		copy(shards[i], data[start:end])
	}
	return shards
}

// joinShards concatenates shards and truncates to dataLen bytes.
func joinShards(shards [][]byte, dataLen int) []byte {
	out := make([]byte, 0, dataLen)
	for _, s := range shards {
		out = append(out, s...)
	}
	return out[:dataLen]
}
