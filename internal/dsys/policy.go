package dsys

import (
	"math/rand"

	"spacebounds/internal/oracle"
	"spacebounds/internal/storagecost"
)

// PendingView describes one pending RMW to a scheduling policy.
type PendingView struct {
	// Index identifies the pending RMW within the View (pass it back in a
	// Decision with KindApply).
	Index int
	// Seq is the global trigger order; lower means triggered earlier, which
	// is what "longest pending" refers to.
	Seq int64
	// Object is the target base object.
	Object int
	// ObjectCrashed reports whether the target has crashed; crashed objects
	// never apply RMWs, so choosing one is a scheduling error.
	ObjectCrashed bool
	// ObjectSuspended reports whether the target is currently suspended
	// (unresponsive but alive); suspended objects do not apply RMWs until a
	// KindResumeObject decision, so choosing one is a scheduling error.
	ObjectSuspended bool
	// ObjectRetired reports whether the target was retired by reconfiguration;
	// like a crashed object, a retired object never applies RMWs, so choosing
	// one is a scheduling error.
	ObjectRetired bool
	// Client is the triggering client and Op the high-level operation the
	// RMW belongs to.
	Client int
	Op     OpID
}

// ReadyClient describes a client task that is ready to execute local steps
// (it has been unblocked or newly spawned and awaits the run token).
type ReadyClient struct {
	Ticket int64
	Client int
}

// View is the information a Policy sees at each scheduling point.
type View struct {
	// Step counts scheduling decisions made so far.
	Step int
	// Pending lists RMWs that have been triggered but have not taken effect.
	Pending []PendingView
	// Ready lists client tasks waiting to run local code.
	Ready []ReadyClient
	// Storage is the current storage snapshot (nil when accounting disabled).
	Storage *storagecost.Snapshot
	// OutstandingWrites lists write operations that are invoked but not yet
	// returned, in invocation order.
	OutstandingWrites []oracle.WriteID
	// Clients lists the IDs of live (spawned, not finished, not crashed)
	// client tasks in spawn order; they are the candidates for a
	// KindCrashClient decision.
	Clients []int
	// DataBits is D, the register value size in bits (0 if not configured).
	DataBits int
}

// DecisionKind enumerates the moves available to a policy.
type DecisionKind int

// Decision kinds.
const (
	// KindApply lets the pending RMW identified by PendingIndex take effect
	// and delivers its response.
	KindApply DecisionKind = iota + 1
	// KindRun grants the run token to the ready client identified by Ticket,
	// letting it execute local steps until it blocks again.
	KindRun
	// KindStall makes no move. If nothing else can change (no running
	// client), the run is declared stuck.
	KindStall
	// KindCrashObject crashes the base object named by Object, permanently
	// (unless the cluster restarts it). The environment of the model may
	// crash up to f base objects.
	KindCrashObject
	// KindSuspendObject marks the base object named by Object unresponsive:
	// its pending RMWs are frozen until a KindResumeObject decision. This is
	// the "arbitrarily slow" adversary move.
	KindSuspendObject
	// KindResumeObject lifts a suspension set by KindSuspendObject.
	KindResumeObject
	// KindCrashClient crashes the client named by Client: it never takes
	// another step, though its already-triggered RMWs may still take effect.
	// The model permits any number of client crashes.
	KindCrashClient
)

// Decision is a policy's choice at one scheduling point.
type Decision struct {
	Kind         DecisionKind
	PendingIndex int
	Ticket       int64
	// Object names the base object of a crash/suspend/resume decision.
	Object int
	// Client names the victim of a KindCrashClient decision.
	Client int
}

// Policy decides, at every scheduling point, whether to let a pending RMW
// take effect, let a ready client run, or stall. The environment of the
// paper's model is exactly such a policy.
type Policy interface {
	Decide(v *View) Decision
}

// FairPolicy is the default scheduler: it always lets ready clients run
// first (lowest ticket, i.e. FIFO), and otherwise applies the
// longest-pending RMW whose target object is alive. Runs scheduled by
// FairPolicy are fair in the paper's sense: every triggered RMW on a correct
// base object eventually takes effect and every correct client gets
// infinitely many opportunities to take steps.
type FairPolicy struct{}

var _ Policy = FairPolicy{}

// Decide implements Policy.
func (FairPolicy) Decide(v *View) Decision {
	if len(v.Ready) > 0 {
		best := v.Ready[0]
		for _, r := range v.Ready[1:] {
			if r.Ticket < best.Ticket {
				best = r
			}
		}
		return Decision{Kind: KindRun, Ticket: best.Ticket}
	}
	bestIdx := -1
	var bestSeq int64
	for _, p := range v.Pending {
		if p.ObjectCrashed || p.ObjectSuspended || p.ObjectRetired {
			continue
		}
		if bestIdx == -1 || p.Seq < bestSeq {
			bestIdx, bestSeq = p.Index, p.Seq
		}
	}
	if bestIdx >= 0 {
		return Decision{Kind: KindApply, PendingIndex: bestIdx}
	}
	return Decision{Kind: KindStall}
}

// RandomPolicy chooses uniformly at random among all enabled moves (ready
// clients and pending RMWs on live objects). It is seeded, so runs are
// reproducible, and it is fair with probability 1, which makes it the
// scheduler of choice for randomized consistency testing.
type RandomPolicy struct {
	rng *rand.Rand
}

var _ Policy = (*RandomPolicy)(nil)

// NewRandomPolicy returns a RandomPolicy with the given seed.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Decide implements Policy.
func (p *RandomPolicy) Decide(v *View) Decision {
	type move struct {
		kind   DecisionKind
		index  int
		ticket int64
	}
	moves := make([]move, 0, len(v.Ready)+len(v.Pending))
	for _, r := range v.Ready {
		moves = append(moves, move{kind: KindRun, ticket: r.Ticket})
	}
	for _, pd := range v.Pending {
		if pd.ObjectCrashed || pd.ObjectSuspended || pd.ObjectRetired {
			continue
		}
		moves = append(moves, move{kind: KindApply, index: pd.Index})
	}
	if len(moves) == 0 {
		return Decision{Kind: KindStall}
	}
	m := moves[p.rng.Intn(len(moves))]
	return Decision{Kind: m.kind, PendingIndex: m.index, Ticket: m.ticket}
}

// DelayObjectsPolicy wraps an inner policy but refuses to apply RMWs on a
// fixed set of base objects, modelling objects that are arbitrarily slow
// (but not crashed). Experiments use it to stress quorum paths.
type DelayObjectsPolicy struct {
	Inner   Policy
	Delayed map[int]bool
}

var _ Policy = (*DelayObjectsPolicy)(nil)

// Decide implements Policy.
func (p *DelayObjectsPolicy) Decide(v *View) Decision {
	filtered := *v
	filtered.Pending = make([]PendingView, 0, len(v.Pending))
	for _, pd := range v.Pending {
		if p.Delayed[pd.Object] {
			continue
		}
		filtered.Pending = append(filtered.Pending, pd)
	}
	return p.Inner.Decide(&filtered)
}
