package dsys

import (
	"errors"
	"testing"
)

// scriptPolicy replays a fixed decision list, then falls back to FairPolicy.
// Views are passed to optional probes so tests can assert what policies see.
type scriptPolicy struct {
	decisions []Decision
	probe     func(*View)
}

func (p *scriptPolicy) Decide(v *View) Decision {
	if p.probe != nil {
		p.probe(v)
	}
	if len(p.decisions) > 0 {
		d := p.decisions[0]
		p.decisions = p.decisions[1:]
		return d
	}
	return FairPolicy{}.Decide(v)
}

func TestSuspendedObjectsAreNotApplied(t *testing.T) {
	suspendedSeen := false
	c := newTestCluster(3, WithPolicy(&scriptPolicy{probe: func(v *View) {
		for _, p := range v.Pending {
			if p.Object == 1 && p.ObjectSuspended {
				suspendedSeen = true
			}
		}
	}}))
	defer c.Close()
	if err := c.SuspendObject(1); err != nil {
		t.Fatal(err)
	}
	th := c.Spawn(1, func(h *ClientHandle) error {
		// Quorum of 2 out of 3 with object 1 suspended: the fair policy must
		// satisfy the round from objects 0 and 2.
		_, err := h.InvokeAll(func(int) RMW { return addBlockRMW{bits: 8} }, 2)
		return err
	})
	c.Start()
	if err := th.Wait(); err != nil {
		t.Fatalf("quorum round should complete around the suspended object: %v", err)
	}
	if got := c.SuspendedObjects(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SuspendedObjects = %v, want [1]", got)
	}
	// The suspended object's RMW is still pending; resuming lets it drain.
	if err := c.ResumeObject(1); err != nil {
		t.Fatal(err)
	}
	if reason := c.WaitIdle(); reason != IdleQuiesced {
		t.Fatalf("after resume the run should quiesce, got %v", reason)
	}
	if got := c.SuspendedObjects(); len(got) != 0 {
		t.Fatalf("SuspendedObjects after resume = %v, want none", got)
	}
	c.Close() // joins the coordinator; safe to read the probe's flag now
	if !suspendedSeen {
		t.Fatal("policy view never marked object 1 suspended")
	}
}

func TestCrashClientDecisionStopsAClient(t *testing.T) {
	// Crash client 2 before it runs a single step, then schedule fairly.
	c := newTestCluster(3, WithPolicy(&scriptPolicy{
		decisions: []Decision{{Kind: KindCrashClient, Client: 2}},
	}))
	ranCrashed := false
	t1 := c.Spawn(1, func(h *ClientHandle) error {
		_, err := h.InvokeAll(func(int) RMW { return addBlockRMW{bits: 8} }, 2)
		return err
	})
	t2 := c.Spawn(2, func(h *ClientHandle) error {
		ranCrashed = true
		return nil
	})
	c.Start()
	if err := t1.Wait(); err != nil {
		t.Fatalf("surviving client should finish: %v", err)
	}
	if reason := c.WaitIdle(); reason != IdleQuiesced {
		t.Fatalf("run with a crashed client should still quiesce, got %v", reason)
	}
	if got := c.CrashedClients(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("CrashedClients = %v, want [2]", got)
	}
	c.Close()
	if err := t2.Wait(); !errors.Is(err, ErrHalted) {
		t.Fatalf("crashed client's task should be released with ErrHalted, got %v", err)
	}
	if ranCrashed {
		t.Fatal("crashed client must never take a step")
	}
}

func TestRestartObjectRevivesCrashedObject(t *testing.T) {
	c := newTestCluster(3, WithLiveMode())
	defer c.Close()
	if err := c.CrashObject(0); err != nil {
		t.Fatal(err)
	}
	err := c.RunScoped(1, 0, 3, func(h *ClientHandle) error {
		_, err := h.InvokeAll(func(int) RMW { return addBlockRMW{bits: 8} }, 3)
		return err
	})
	if err == nil {
		t.Fatal("quorum of 3 with a crashed object must fail")
	}
	if err := c.RestartObject(0); err != nil {
		t.Fatal(err)
	}
	err = c.RunScoped(1, 0, 3, func(h *ClientHandle) error {
		_, err := h.InvokeAll(func(int) RMW { return addBlockRMW{bits: 8} }, 3)
		return err
	})
	if err != nil {
		t.Fatalf("after restart the full quorum should be reachable: %v", err)
	}
	if got := c.CrashedObjects(); len(got) != 0 {
		t.Fatalf("CrashedObjects after restart = %v, want none", got)
	}
}

func TestLogicalTimeAdvancesWithSteps(t *testing.T) {
	c := newTestCluster(2)
	defer c.Close()
	if c.LogicalTime() != 0 {
		t.Fatalf("logical time before start = %d, want 0", c.LogicalTime())
	}
	th := c.Spawn(1, func(h *ClientHandle) error {
		_, err := h.InvokeAll(func(int) RMW { return addBlockRMW{bits: 8} }, 2)
		return err
	})
	c.Start()
	if err := th.Wait(); err != nil {
		t.Fatal(err)
	}
	if lt := c.LogicalTime(); lt == 0 {
		t.Fatal("logical time did not advance with scheduling steps")
	}
	if lt, steps := c.LogicalTime(), int64(c.Steps()); lt != steps {
		t.Fatalf("LogicalTime %d != Steps %d", lt, steps)
	}
}

func TestFaultDecisionBoundsChecks(t *testing.T) {
	// An out-of-range fault decision must degrade to a stall (a pinned run),
	// not a panic; Close then releases the blocked client.
	for _, bogus := range []Decision{
		{Kind: KindCrashObject, Object: 99},
		{Kind: KindSuspendObject, Object: -1},
		{Kind: KindResumeObject, Object: 17},
		{Kind: KindCrashClient, Client: 42},
	} {
		c := newTestCluster(2, WithPolicy(&scriptPolicy{decisions: []Decision{bogus}}))
		th := c.Spawn(1, func(h *ClientHandle) error {
			_, err := h.InvokeAll(func(int) RMW { return addBlockRMW{bits: 8} }, 2)
			return err
		})
		c.Start()
		if reason := c.WaitIdle(); reason != IdleStuck {
			t.Fatalf("decision %+v should pin the run, got %v", bogus, reason)
		}
		c.Close()
		if err := th.Wait(); !errors.Is(err, ErrHalted) {
			t.Fatalf("decision %+v: blocked client should be released with ErrHalted, got %v", bogus, err)
		}
	}
}
