package dsys

import (
	"errors"
	"sync"
	"testing"

	"spacebounds/internal/storagecost"
)

// recJournal records RecordApply calls and reports fixed durable blocks.
type recJournal struct {
	mu      sync.Mutex
	applies []int
	blocks  []storagecost.BlockInfo
}

func (j *recJournal) RecordApply(object int, rmw RMW) {
	j.mu.Lock()
	j.applies = append(j.applies, object)
	j.mu.Unlock()
}

func (j *recJournal) DurableBlocks() []storagecost.BlockInfo { return j.blocks }

func (j *recJournal) recorded() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]int(nil), j.applies...)
}

// TestJournalRecordsAppliesAndDurableBlocks: an attached journal sees every
// applied RMW, its durable blocks ride along in storage samples on the
// durable axis, and detaching stops both.
func TestJournalRecordsAppliesAndDurableBlocks(t *testing.T) {
	c := newTestCluster(3, WithLiveMode())
	defer c.Close()
	j := &recJournal{blocks: []storagecost.BlockInfo{
		{Location: storagecost.Location{Kind: storagecost.DurableLog, ID: 0}, Bits: 64},
		{Location: storagecost.Location{Kind: storagecost.DurableSnapshot, ID: 1}, Bits: 32},
	}}
	c.SetJournal(j)
	for i := 0; i < 2; i++ {
		if _, err := c.ApplyOne(0, addBlockRMW{bits: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.recorded(); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("journal recorded %v, want [0 0]", got)
	}
	snap := c.SampleStorage()
	if snap.DurableLogBits != 64 || snap.DurableSnapshotBits != 32 {
		t.Fatalf("durable axis = log %d / snap %d, want 64 / 32", snap.DurableLogBits, snap.DurableSnapshotBits)
	}
	if snap.DurableBits() != 96 {
		t.Fatalf("DurableBits = %d, want 96", snap.DurableBits())
	}

	c.SetJournal(nil)
	if _, err := c.ApplyOne(1, addBlockRMW{bits: 8}); err != nil {
		t.Fatal(err)
	}
	if got := j.recorded(); len(got) != 2 {
		t.Fatalf("detached journal still recorded: %v", got)
	}
	if snap := c.SampleStorage(); snap.DurableBits() != 0 {
		t.Fatalf("detached journal still reports %d durable bits", snap.DurableBits())
	}
}

// TestObjectStateReadRestoreReplay covers the recovery surface: observing a
// state under its apply lock, installing a decoded snapshot state, and
// re-applying journaled RMWs on top — including while the object is crashed,
// which is exactly when recovery runs.
func TestObjectStateReadRestoreReplay(t *testing.T) {
	c := newTestCluster(3, WithLiveMode())
	defer c.Close()
	if _, err := c.ApplyOne(0, addBlockRMW{bits: 8}); err != nil {
		t.Fatal(err)
	}
	var counter int
	if err := c.ReadObjectState(0, func(s State) { counter = s.(*testState).counter }); err != nil {
		t.Fatal(err)
	}
	if counter != 1 {
		t.Fatalf("observed counter = %d, want 1", counter)
	}

	if err := c.CrashObject(0); err != nil {
		t.Fatal(err)
	}
	if !c.ObjectDown(0) {
		t.Fatal("ObjectDown(0) = false after crash")
	}
	if err := c.RestoreObjectState(0, &testState{counter: 5}); err != nil {
		t.Fatal(err)
	}
	// ReplayApply works on the crashed object (recovery replays before the
	// restart) and bypasses journal and metrics.
	out, err := c.ReplayApply(0, addBlockRMW{bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out != 6 {
		t.Fatalf("ReplayApply = %v, want 6 (restored 5 + 1)", out)
	}
	if err := c.RestartObject(0); err != nil {
		t.Fatal(err)
	}
	if c.ObjectDown(0) {
		t.Fatal("ObjectDown(0) = true after restart")
	}

	// Error paths: unknown and retired objects, and the out-of-range probe.
	for name, err := range map[string]error{
		"ReadObjectState":    c.ReadObjectState(99, func(State) {}),
		"RestoreObjectState": c.RestoreObjectState(99, &testState{}),
	} {
		if !errors.Is(err, ErrUnknownObject) {
			t.Fatalf("%s(99) = %v, want ErrUnknownObject", name, err)
		}
	}
	if _, err := c.ReplayApply(-1, addBlockRMW{}); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("ReplayApply(-1) = %v, want ErrUnknownObject", err)
	}
	if c.ObjectDown(99) {
		t.Fatal("ObjectDown(99) = true for unknown object")
	}
	if err := c.RetireObjects(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadObjectState(2, func(State) {}); !errors.Is(err, ErrRetiredObject) {
		t.Fatalf("ReadObjectState(retired) = %v, want ErrRetiredObject", err)
	}
	if err := c.RestoreObjectState(2, &testState{}); !errors.Is(err, ErrRetiredObject) {
		t.Fatalf("RestoreObjectState(retired) = %v, want ErrRetiredObject", err)
	}
	if _, err := c.ReplayApply(2, addBlockRMW{}); !errors.Is(err, ErrRetiredObject) {
		t.Fatalf("ReplayApply(retired) = %v, want ErrRetiredObject", err)
	}
}
