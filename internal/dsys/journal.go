package dsys

import (
	"fmt"

	"spacebounds/internal/storagecost"
	"spacebounds/internal/trace"
)

// Journal is the durability hook a cluster drives: every mutating RMW that
// takes effect is reported to the attached journal from inside the object's
// apply critical section, so the journal's record order matches the apply
// order per object exactly. DurableBlocks feeds the journal's on-disk
// footprint into storage snapshots on the durable axis.
//
// The interface lives here (rather than the wal package importing dsys the
// other way around) for the same reason clusterMetrics does: the cluster is
// the attachment point, and it must not depend on how durability is
// implemented.
type Journal interface {
	// RecordApply journals one applied RMW for the given global object ID.
	// It is called under the object's apply lock; implementations must not
	// call back into the cluster from it.
	RecordApply(object int, rmw RMW)
	// DurableBlocks reports the journal's current on-disk footprint for
	// storage accounting (DurableLog / DurableSnapshot locations).
	DurableBlocks() []storagecost.BlockInfo
}

// TracedJournal is the optional extension a journal implements to receive the
// applying operation's trace context alongside the RMW; the WAL uses it to
// record wal-append/wal-fsync spans under the operation's trace. Journals
// that do not implement it keep working unchanged — sampled applies fall back
// to RecordApply.
type TracedJournal interface {
	Journal
	// RecordApplyTraced is RecordApply for an apply that belongs to a sampled
	// trace; the same calling rules apply (under the object's apply lock, no
	// calls back into the cluster).
	RecordApplyTraced(object int, rmw RMW, tc trace.Context)
}

// durableReporter adapts a journal's on-disk footprint to
// storagecost.Reporter so snapshots carry the durability axis.
type durableReporter struct{ j Journal }

// StorageBlocks implements storagecost.Reporter.
func (r durableReporter) StorageBlocks() []storagecost.BlockInfo { return r.j.DurableBlocks() }

// journalHolder wraps the Journal interface so a single atomic pointer
// swap attaches or detaches it (same pattern as clusterMetrics). The
// TracedJournal extension is resolved once at attach time, keeping the type
// assertion off the apply path.
type journalHolder struct {
	j  Journal
	tj TracedJournal // nil when j does not implement the extension
}

// SetJournal attaches a journal to the cluster (nil detaches). Attach the
// journal before admitting traffic: applies that race with the attachment may
// or may not be recorded.
func (c *Cluster) SetJournal(j Journal) {
	if j == nil {
		c.jour.Store(nil)
		return
	}
	h := &journalHolder{j: j}
	if tj, ok := j.(TracedJournal); ok {
		h.tj = tj
	}
	c.jour.Store(h)
}

// journalApply reports one applied RMW to the attached journal, if any.
// Callers hold the object's apply lock (liveMu, or c.mu in controlled mode),
// which is what serializes the journal's record order with the apply order.
func (c *Cluster) journalApply(object int, rmw RMW) {
	if h := c.jour.Load(); h != nil {
		h.j.RecordApply(object, rmw)
	}
}

// journalApplyTraced is journalApply carrying the applying operation's trace
// context: a sampled apply reaches a TracedJournal through the extension so
// the journal's stages join the operation's trace, and everything else takes
// the plain path.
func (c *Cluster) journalApplyTraced(object int, rmw RMW, tc trace.Context) {
	h := c.jour.Load()
	if h == nil {
		return
	}
	if tc.Sampled() && h.tj != nil {
		h.tj.RecordApplyTraced(object, rmw, tc)
		return
	}
	h.j.RecordApply(object, rmw)
}

// ReadObjectState runs fn with the object's live state under its apply lock.
// A snapshotter uses it to observe a state that is not mid-Apply; fn must not
// retain the state past the call or invoke cluster methods.
func (c *Cluster) ReadObjectState(id int, fn func(s State)) error {
	objects := c.objs()
	if id < 0 || id >= len(objects) {
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	o := objects[id]
	if o.retired.Load() {
		return fmt.Errorf("%w: %d", ErrRetiredObject, id)
	}
	o.liveMu.Lock()
	fn(o.state)
	o.liveMu.Unlock()
	return nil
}

// RestoreObjectState replaces the object's state wholesale, bypassing the
// journal. Recovery uses it to install a decoded snapshot state before
// replaying the log suffix on top.
func (c *Cluster) RestoreObjectState(id int, s State) error {
	objects := c.objs()
	if id < 0 || id >= len(objects) {
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	o := objects[id]
	if o.retired.Load() {
		return fmt.Errorf("%w: %d", ErrRetiredObject, id)
	}
	o.liveMu.Lock()
	o.state = s
	o.liveMu.Unlock()
	return nil
}

// ReplayApply applies a journaled RMW during recovery. Unlike ApplyOne it
// deliberately ignores the crashed flag — replay happens while the object is
// still marked down, which is also what guarantees no live client races the
// replay — and it reports nothing back to the journal or the metrics, since
// the RMW was already recorded when it first applied.
func (c *Cluster) ReplayApply(id int, rmw RMW) (any, error) {
	objects := c.objs()
	if id < 0 || id >= len(objects) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	o := objects[id]
	if o.retired.Load() {
		return nil, fmt.Errorf("%w: %d", ErrRetiredObject, id)
	}
	o.liveMu.Lock()
	r := rmw.Apply(o.state)
	o.applied++
	o.liveMu.Unlock()
	return r, nil
}

// ObjectDown reports whether the base object is currently crashed. The facade
// uses it to decide whether a node restart needs a recovery replay first.
func (c *Cluster) ObjectDown(id int) bool {
	objects := c.objs()
	if id < 0 || id >= len(objects) {
		return false
	}
	return objects[id].crashed.Load()
}
