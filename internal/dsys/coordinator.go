package dsys

// coordinator is the controlled-mode scheduling loop. It runs while the
// cluster is open and, whenever no client task holds the run token, asks the
// policy for the next move: let a pending RMW take effect, let a ready client
// run, or stall. It is the implementation of the model's "environment".
func (c *Cluster) coordinator() {
	defer c.wg.Done()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.halted {
			c.idleReason = IdleHalted
			c.cond.Broadcast()
			return
		}
		if !c.started || c.runningTask != nil {
			c.cond.Wait()
			continue
		}
		if len(c.readyQ) == 0 && !c.hasApplicablePendingLocked() {
			// Nothing the policy could schedule.
			if c.liveTasks == 0 {
				c.idleReason = IdleQuiesced
			} else {
				// Clients exist but are all blocked on RMWs that can never be
				// applied (e.g. targets crashed): the run is stuck.
				c.idleReason = IdleStuck
			}
			c.cond.Broadcast()
			c.cond.Wait()
			continue
		}
		if c.opts.maxSteps > 0 && c.steps >= c.opts.maxSteps {
			c.idleReason = IdleStuck
			c.cond.Broadcast()
			c.cond.Wait()
			continue
		}

		view := c.buildViewLocked()
		decision := c.opts.policy.Decide(view)
		c.steps++
		switch decision.Kind {
		case KindRun:
			t := c.takeReadyLocked(decision.Ticket)
			if t == nil {
				// The policy named an unknown ticket; treat as a stall so a
				// buggy policy cannot spin the coordinator.
				c.stallLocked()
				continue
			}
			t.state = taskRunning
			c.runningTask = t
			c.idleReason = ""
			if c.opts.tracer != nil {
				c.emitTrace(TraceEvent{Step: c.steps, Kind: TraceRun, Client: t.client})
			}
			c.cond.Broadcast()
		case KindApply:
			if decision.PendingIndex < 0 || decision.PendingIndex >= len(c.pending) {
				c.stallLocked()
				continue
			}
			if c.objs()[c.pending[decision.PendingIndex].object].suspended.Load() {
				// Suspended objects do not apply RMWs; a policy that picks one
				// anyway is treated like one that made no move.
				c.stallLocked()
				continue
			}
			c.applyPendingLocked(decision.PendingIndex)
		case KindCrashObject:
			if decision.Object < 0 || decision.Object >= c.N() {
				c.stallLocked()
				continue
			}
			c.objs()[decision.Object].crashed.Store(true)
			if c.opts.tracer != nil {
				c.emitTrace(TraceEvent{Step: c.steps, Kind: TraceCrash, Object: decision.Object})
			}
			c.cond.Broadcast()
		case KindSuspendObject, KindResumeObject:
			if decision.Object < 0 || decision.Object >= c.N() {
				c.stallLocked()
				continue
			}
			suspend := decision.Kind == KindSuspendObject
			c.objs()[decision.Object].suspended.Store(suspend)
			if c.opts.tracer != nil {
				kind := TraceResume
				if suspend {
					kind = TraceSuspend
				}
				c.emitTrace(TraceEvent{Step: c.steps, Kind: kind, Object: decision.Object})
			}
			c.cond.Broadcast()
		case KindCrashClient:
			if !c.crashClientLocked(decision.Client) {
				c.stallLocked()
				continue
			}
			if c.opts.tracer != nil {
				c.emitTrace(TraceEvent{Step: c.steps, Kind: TraceClientCrash, Client: decision.Client})
			}
			c.cond.Broadcast()
		default:
			c.stallLocked()
		}
	}
}

// stallLocked records that the policy made no move and parks the coordinator
// until the situation changes (new spawn, crash, or Close).
func (c *Cluster) stallLocked() {
	c.idleReason = IdleStuck
	if c.opts.tracer != nil {
		c.emitTrace(TraceEvent{Step: c.steps, Kind: TraceStall})
	}
	c.cond.Broadcast()
	c.cond.Wait()
}

// hasApplicablePendingLocked reports whether any pending RMW targets a live
// (neither crashed nor retired) object.
func (c *Cluster) hasApplicablePendingLocked() bool {
	objects := c.objs()
	for _, p := range c.pending {
		if o := objects[p.object]; !o.crashed.Load() && !o.retired.Load() {
			return true
		}
	}
	return false
}

// takeReadyLocked removes and returns the ready task with the given ticket.
func (c *Cluster) takeReadyLocked(ticket int64) *clientTask {
	for i, t := range c.readyQ {
		if t.ticket == ticket {
			c.readyQ = append(c.readyQ[:i], c.readyQ[i+1:]...)
			return t
		}
	}
	return nil
}

// buildViewLocked assembles the policy's view of the system.
func (c *Cluster) buildViewLocked() *View {
	v := &View{
		Step:              c.steps,
		DataBits:          c.opts.dataBits,
		OutstandingWrites: c.outstandingWritesLocked(),
	}
	objects := c.objs()
	for i, p := range c.pending {
		v.Pending = append(v.Pending, PendingView{
			Index:           i,
			Seq:             p.seq,
			Object:          p.object,
			ObjectCrashed:   objects[p.object].crashed.Load(),
			ObjectSuspended: objects[p.object].suspended.Load(),
			ObjectRetired:   objects[p.object].retired.Load(),
			Client:          p.op.Client,
			Op:              p.op,
		})
	}
	for _, t := range c.readyQ {
		v.Ready = append(v.Ready, ReadyClient{Ticket: t.ticket, Client: t.client})
	}
	seen := make(map[int]bool)
	for _, t := range c.tasks {
		if t.crashed || t.state == taskDone || seen[t.client] {
			continue
		}
		seen[t.client] = true
		v.Clients = append(v.Clients, t.client)
	}
	if c.acct != nil {
		v.Storage = c.snapshotLocked()
	}
	return v
}

// applyPendingLocked lets the pending RMW at the given index take effect:
// the state change is applied atomically, the response is recorded, storage
// is re-sampled, and the owning task is made ready again if its quorum is now
// satisfied.
func (c *Cluster) applyPendingLocked(index int) {
	p := c.pending[index]
	c.pending = append(c.pending[:index], c.pending[index+1:]...)
	obj := c.objs()[p.object]
	if obj.crashed.Load() || obj.retired.Load() {
		// A policy should never pick a crashed or retired object; drop the RMW
		// silently (it can never take effect).
		return
	}
	resp := p.rmw.Apply(obj.state)
	obj.applied++
	c.journalApply(p.object, p.rmw)
	p.call.Done = true
	p.call.Response = resp
	c.idleReason = ""
	if c.opts.tracer != nil {
		c.emitTrace(TraceEvent{Step: c.steps, Kind: TraceApply, Object: p.object, Client: p.op.Client, Op: p.op})
	}
	if c.acct != nil {
		c.acct.Observe(c.snapshotLocked())
	}
	if t := p.owner; t != nil && t.state == taskBlocked && !t.crashed {
		done := 0
		for _, call := range t.waitCalls {
			if call.Done {
				done++
			}
		}
		if done >= t.waitNeed {
			t.state = taskReady
			t.ticket = c.nextTicket
			c.nextTicket++
			c.readyQ = append(c.readyQ, t)
		}
	}
	c.cond.Broadcast()
}

// emitTrace calls the tracer without holding the cluster lock assumptions the
// tracer should not rely on; it is invoked with c.mu held, so tracers must
// not call back into the cluster.
func (c *Cluster) emitTrace(ev TraceEvent) {
	c.opts.tracer(ev)
}
