package dsys

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Op: OpID{Client: 7, Seq: 42, Kind: OpWrite}, Object: 3, Kind: "abd.update", Payload: []byte{1, 2, 3}},
		{Op: OpID{Client: 0, Seq: 0, Kind: OpRead}, Object: 0, Kind: "", Payload: nil},
		{Op: OpID{Client: 1 << 40, Seq: 9, Kind: OpRead}, Object: 1 << 30, Kind: "x", Payload: make([]byte, 1000)},
	}
	for _, e := range cases {
		wire, err := e.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %+v: %v", e, err)
		}
		got, err := UnmarshalEnvelope(wire)
		if err != nil {
			t.Fatalf("unmarshal %+v: %v", e, err)
		}
		if got.Op != e.Op || got.Object != e.Object || got.Kind != e.Kind || !bytes.Equal(got.Payload, e.Payload) {
			t.Fatalf("round trip %+v -> %+v", e, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Op: OpID{Client: 7, Seq: 42, Kind: OpWrite}, Object: 3, Status: StatusOK, Payload: []byte{9, 8}},
		{Op: OpID{Client: 1, Seq: 2, Kind: OpRead}, Object: 11, Status: StatusObjectDown, Detail: "object 11 crashed"},
		{Status: StatusBadRequest},
	}
	for _, r := range cases {
		wire, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %+v: %v", r, err)
		}
		got, err := UnmarshalResponse(wire)
		if err != nil {
			t.Fatalf("unmarshal %+v: %v", r, err)
		}
		if got.Op != r.Op || got.Object != r.Object || got.Status != r.Status ||
			!bytes.Equal(got.Payload, r.Payload) || got.Detail != r.Detail {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
	}
}

// Every strict prefix of a valid encoding must be rejected as truncated, and
// any trailing garbage must be rejected too — decoders never guess.
func TestEnvelopeTruncationAndTrailing(t *testing.T) {
	e := Envelope{Op: OpID{Client: 3, Seq: 4, Kind: OpWrite}, Object: 2, Kind: "ec.read", Payload: []byte("pp")}
	wire, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(wire); n++ {
		if _, err := UnmarshalEnvelope(wire[:n]); !errors.Is(err, ErrEnvelope) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrEnvelope", n, err)
		}
	}
	if _, err := UnmarshalEnvelope(append(append([]byte{}, wire...), 0)); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("trailing byte accepted: %v", err)
	}

	r := Response{Op: e.Op, Object: 2, Status: StatusOK, Payload: []byte("v"), Detail: "d"}
	rwire, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(rwire); n++ {
		if _, err := UnmarshalResponse(rwire[:n]); !errors.Is(err, ErrEnvelope) {
			t.Fatalf("response prefix of %d bytes: err = %v, want ErrEnvelope", n, err)
		}
	}
	if _, err := UnmarshalResponse(append(append([]byte{}, rwire...), 0)); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("response trailing byte accepted: %v", err)
	}
}

func TestEnvelopeRejectsBadVersionAndLengths(t *testing.T) {
	e := Envelope{Kind: "k"}
	wire, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, wire...)
	bad[0] = envelopeVersionV2 + 1
	if _, err := UnmarshalEnvelope(bad); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("version %d accepted: %v", bad[0], err)
	}
	// Version 2 on a version-1-sized buffer is not a bad version — it is a
	// truncation (the trace context is missing).
	bad[0] = envelopeVersionV2
	if _, err := UnmarshalEnvelope(bad); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("v2 envelope without trace bytes accepted: %v", err)
	}
	if _, err := UnmarshalResponse(bad); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("response version %d accepted: %v", bad[0], err)
	}

	// A declared payload length far beyond the buffer must be rejected before
	// any allocation of that size is attempted.
	huge := []byte{envelopeVersion}
	huge = appendOpID(huge, OpID{})
	huge = append(huge, make([]byte, 8)...)                              // object
	huge = append(huge, 0, 0)                                            // empty kind
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF)                          // 4 GiB payload...
	if _, err := UnmarshalEnvelope(huge); !errors.Is(err, ErrEnvelope) { // ...with no bytes behind it
		t.Fatalf("oversized declared payload accepted: %v", err)
	}

	// Oversized fields fail encoding rather than silently corrupting lengths.
	if _, err := (Envelope{Kind: strings.Repeat("k", 1<<16)}).MarshalBinary(); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("oversized kind encoded: %v", err)
	}

	// A response detail beyond u16 is advisory text: it truncates, not fails.
	long := Response{Status: StatusOK, Detail: strings.Repeat("d", 1<<16+5)}
	lwire, err := long.MarshalBinary()
	if err != nil {
		t.Fatalf("long detail: %v", err)
	}
	got, err := UnmarshalResponse(lwire)
	if err != nil {
		t.Fatalf("long detail round trip: %v", err)
	}
	if len(got.Detail) != 1<<16-1 {
		t.Fatalf("detail truncated to %d bytes, want %d", len(got.Detail), 1<<16-1)
	}
}

func TestStatusStringAndErr(t *testing.T) {
	wantErr := map[Status]error{
		StatusOK:            nil,
		StatusObjectDown:    ErrObjectDown,
		StatusRetired:       ErrRetiredObject,
		StatusUnknownObject: ErrUnknownObject,
		StatusNotHosted:     ErrUnknownObject,
		StatusRecovering:    ErrRecovering,
		StatusHalted:        ErrHalted,
		StatusBadRequest:    ErrRemote,
	}
	for s, want := range wantErr {
		err := s.Err()
		if want == nil {
			if err != nil {
				t.Fatalf("%v.Err() = %v, want nil", s, err)
			}
			continue
		}
		if !errors.Is(err, want) {
			t.Fatalf("%v.Err() = %v, want errors.Is %v", s, err, want)
		}
		if strings.HasPrefix(s.String(), "status(") {
			t.Fatalf("defined status %d has no name", s)
		}
	}
	if got := Status(99).String(); got != "status(99)" {
		t.Fatalf("unknown status string = %q", got)
	}
	if err := Status(99).Err(); !errors.Is(err, ErrRemote) {
		t.Fatalf("unknown status err = %v, want ErrRemote", err)
	}
}
