package dsys

import (
	"errors"
	"sync"
	"testing"
	"time"

	"spacebounds/internal/oracle"
)

// TestLiveBatchCoalescesServicePeriods proves the point of the batched
// engine: many concurrent RMWs on one object complete in far fewer service
// periods than RMWs, because each period drains a whole batch.
func TestLiveBatchCoalescesServicePeriods(t *testing.T) {
	const (
		rmws    = 32
		batch   = 8
		latency = 2 * time.Millisecond
	)
	c := newTestCluster(1, WithLiveMode(), WithLiveLatency(latency), WithLiveBatch(batch))
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < rmws; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := c.RunScoped(i+1, 0, 1, func(h *ClientHandle) error {
				_, err := h.Invoke([]int{0}, func(int) RMW {
					return addBlockRMW{source: oracle.SourceTag{Write: oracle.WriteID{Client: i + 1, Seq: 1}}, bits: 8}
				}, 1)
				return err
			})
			if err != nil {
				t.Errorf("rmw %d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	if got := c.objs()[0].applied; got != rmws {
		t.Fatalf("applied = %d, want %d", got, rmws)
	}
	periods := c.LiveServicePeriods()
	if periods == 0 {
		t.Fatal("batched engine recorded no service periods")
	}
	// Perfect coalescing would need rmws/batch = 4 periods; demand at least a
	// 2x amortization over the one-period-per-RMW engine even under scheduling
	// noise.
	if periods > rmws/2 {
		t.Fatalf("LiveServicePeriods() = %d for %d RMWs with batch %d; coalescing is not happening", periods, rmws, batch)
	}
}

// TestLiveBatchQuorumAndCrash checks that the batched path keeps the quorum
// contract of Invoke: crashed objects never respond, quorums that can still
// form succeed, and unreachable quorums fail with ErrStuck.
func TestLiveBatchQuorumAndCrash(t *testing.T) {
	c := newTestCluster(5, WithLiveMode(), WithLiveLatency(time.Millisecond), WithLiveBatch(4))
	defer c.Close()
	if err := c.CrashObject(4); err != nil {
		t.Fatal(err)
	}

	err := c.RunScoped(1, 0, 5, func(h *ClientHandle) error {
		resp, err := h.InvokeAll(func(obj int) RMW {
			return addBlockRMW{source: oracle.SourceTag{Write: oracle.WriteID{Client: 1, Seq: 1}, Index: obj}, bits: 8}
		}, 4)
		if err != nil {
			return err
		}
		if len(resp) < 4 {
			t.Errorf("got %d responses, want at least 4", len(resp))
		}
		if _, ok := resp[4]; ok {
			t.Error("crashed object 4 responded")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("quorum of 4 with one crash: %v", err)
	}

	// Crash two more: only 2 of 5 objects remain, so a quorum of 4 is
	// unreachable and the round must fail.
	if err := c.CrashObject(0); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashObject(1); err != nil {
		t.Fatal(err)
	}
	err = c.RunScoped(2, 0, 5, func(h *ClientHandle) error {
		_, err := h.InvokeAll(func(obj int) RMW {
			return addBlockRMW{source: oracle.SourceTag{Write: oracle.WriteID{Client: 2, Seq: 1}, Index: obj}, bits: 8}
		}, 4)
		return err
	})
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("unreachable quorum returned %v, want ErrStuck", err)
	}
}

// TestLiveBatchChannelAccounting pins Definition 2 under batching: while RMWs
// sit in an object's service queue their parameters are charged to the
// channel, and the moment the batch is applied the same bits move to the
// base-object state — never both, never neither.
func TestLiveBatchChannelAccounting(t *testing.T) {
	const (
		bits    = 64
		rmws    = 5
		latency = 200 * time.Millisecond
	)
	c := newTestCluster(1, WithLiveMode(), WithLiveLatency(latency), WithLiveBatch(rmws))
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < rmws; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.RunScoped(i+1, 0, 1, func(h *ClientHandle) error {
				_, err := h.Invoke([]int{0}, func(int) RMW {
					return addBlockRMW{source: oracle.SourceTag{Write: oracle.WriteID{Client: i + 1, Seq: 1}}, bits: bits}
				}, 1)
				return err
			})
		}()
	}

	// Wait until all five requests are queued, well within the first service
	// period (the server sleeps latency before applying anything).
	deadline := time.Now().Add(latency / 2)
	for {
		c.objs()[0].qmu.Lock()
		queued := len(c.objs()[0].queue)
		c.objs()[0].qmu.Unlock()
		if queued == rmws {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d RMWs queued before the first service period ended", queued, rmws)
		}
		time.Sleep(time.Millisecond)
	}

	snap := c.SampleStorage()
	if snap.ChannelBits != rmws*bits {
		t.Fatalf("in-flight ChannelBits = %d, want %d", snap.ChannelBits, rmws*bits)
	}
	if snap.BaseObjectBits != 0 {
		t.Fatalf("BaseObjectBits = %d before any batch applied, want 0", snap.BaseObjectBits)
	}

	wg.Wait()
	snap = c.SampleStorage()
	if snap.ChannelBits != 0 {
		t.Fatalf("ChannelBits = %d after quiescence, want 0", snap.ChannelBits)
	}
	if snap.BaseObjectBits != rmws*bits {
		t.Fatalf("BaseObjectBits = %d after quiescence, want %d", snap.BaseObjectBits, rmws*bits)
	}
}

// TestLiveBatchCloseReleasesClients checks that Close unblocks clients whose
// rounds are still queued at object servers.
func TestLiveBatchCloseReleasesClients(t *testing.T) {
	c := newTestCluster(1, WithLiveMode(), WithLiveLatency(time.Hour), WithLiveBatch(2))
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.RunScoped(1, 0, 1, func(h *ClientHandle) error {
			_, err := h.Invoke([]int{0}, func(int) RMW {
				return addBlockRMW{source: oracle.SourceTag{Write: oracle.WriteID{Client: 1, Seq: 1}}, bits: 8}
			}, 1)
			return err
		})
	}()
	// Give the round a moment to enqueue, then halt the cluster.
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrHalted) {
			t.Fatalf("halted round returned %v, want ErrHalted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still blocked after Close")
	}
}
