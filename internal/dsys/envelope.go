package dsys

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Envelope is the wire form of one triggered RMW: the high-level operation it
// belongs to, the global ID of the base object it targets, the registered
// codec kind of the RMW, and the codec-encoded parameters. Envelopes are what
// a transport moves between a client and the process hosting the base object;
// the codec registry in internal/register turns them back into live RMW
// values, so Blocks() accounting on the receiving side is computed from the
// decoded form and Definition-2 charging is unchanged.
type Envelope struct {
	Op      OpID
	Object  int
	Kind    string
	Payload []byte
	// Trace and Span carry the operation's trace context (see
	// internal/trace): the sampled trace ID and the client-side span the
	// node's stages should parent under. Both zero means untraced, and an
	// untraced envelope is encoded in the version-1 layout, so peers
	// predating the trace extension still decode every untraced frame.
	Trace uint64
	Span  uint64
}

// Status is the typed outcome of a remotely applied RMW. Anything other than
// StatusOK means the RMW did not take effect at the addressed base object;
// the transport maps statuses back onto the package's sentinel errors so
// remote failures are errors.Is-distinguishable from local ones.
type Status uint8

// Response statuses.
const (
	// StatusOK: the RMW took effect and Payload carries the encoded response.
	StatusOK Status = iota + 1
	// StatusObjectDown: the base object has crashed (fail-stop until restart).
	StatusObjectDown
	// StatusRetired: the base object was decommissioned by reconfiguration.
	StatusRetired
	// StatusUnknownObject: no base object with that global ID exists.
	StatusUnknownObject
	// StatusNotHosted: the object exists but this node does not host it.
	StatusNotHosted
	// StatusRecovering: the node restarted with empty state and refuses
	// read-only RMWs on this object until a mutating RMW has repopulated it.
	StatusRecovering
	// StatusHalted: the hosting cluster is shutting down.
	StatusHalted
	// StatusBadRequest: the envelope could not be decoded (unknown kind or
	// malformed payload).
	StatusBadRequest
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusObjectDown:
		return "object-down"
	case StatusRetired:
		return "retired"
	case StatusUnknownObject:
		return "unknown-object"
	case StatusNotHosted:
		return "not-hosted"
	case StatusRecovering:
		return "recovering"
	case StatusHalted:
		return "halted"
	case StatusBadRequest:
		return "bad-request"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Err maps a non-OK status onto the package's sentinel errors; StatusOK maps
// to nil. Statuses without a dedicated sentinel map to ErrRemote.
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusObjectDown:
		return ErrObjectDown
	case StatusRetired:
		return ErrRetiredObject
	case StatusUnknownObject, StatusNotHosted:
		return ErrUnknownObject
	case StatusRecovering:
		return ErrRecovering
	case StatusHalted:
		return ErrHalted
	default:
		return fmt.Errorf("%w: %v", ErrRemote, s)
	}
}

// Response is the wire form of one RMW outcome: the echoed operation identity
// and object, a typed status, and — for StatusOK — the codec-encoded
// response value. Detail carries a human-readable elaboration for error
// statuses (never consulted programmatically).
type Response struct {
	Op      OpID
	Object  int
	Status  Status
	Payload []byte
	Detail  string
}

// envelopeVersion tags the wire layout so a future format change is
// detectable instead of silently mis-parsed. Version 2 extends version 1
// with a trailing trace context; encoders emit the oldest version that can
// carry the envelope (version 1 when untraced), and decoders accept both, so
// the extension is invisible to untraced traffic and to old peers receiving
// it.
const (
	envelopeVersion   = 1
	envelopeVersionV2 = 2
)

// ErrEnvelope reports a malformed envelope or response on the wire.
var ErrEnvelope = errors.New("dsys: malformed envelope")

// AppendBinary appends the envelope's wire encoding to b and returns the
// extended slice. Layout (big-endian):
//
//	u8  version (1 untraced, 2 traced)
//	u64 op.client   u64 op.seq   u8 op.kind
//	u64 object
//	u16 len(kind)    kind bytes
//	u32 len(payload) payload bytes
//	u64 trace   u64 span          (version 2 only)
func (e Envelope) AppendBinary(b []byte) ([]byte, error) {
	if len(e.Kind) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: kind of length %d", ErrEnvelope, len(e.Kind))
	}
	if len(e.Payload) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: payload of length %d", ErrEnvelope, len(e.Payload))
	}
	traced := e.Trace != 0 || e.Span != 0
	if traced {
		b = append(b, envelopeVersionV2)
	} else {
		b = append(b, envelopeVersion)
	}
	b = appendOpID(b, e.Op)
	b = binary.BigEndian.AppendUint64(b, uint64(e.Object))
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Kind)))
	b = append(b, e.Kind...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(e.Payload)))
	b = append(b, e.Payload...)
	if traced {
		b = binary.BigEndian.AppendUint64(b, e.Trace)
		b = binary.BigEndian.AppendUint64(b, e.Span)
	}
	return b, nil
}

// MarshalBinary encodes the envelope.
func (e Envelope) MarshalBinary() ([]byte, error) {
	return e.AppendBinary(make([]byte, 0, 32+len(e.Kind)+len(e.Payload)))
}

// UnmarshalEnvelope decodes an envelope, rejecting trailing bytes. Both wire
// versions are accepted: a version-1 (pre-trace) envelope decodes with an
// empty trace context rather than an error.
func UnmarshalEnvelope(b []byte) (Envelope, error) {
	var e Envelope
	cur := cursor{b: b}
	v := cur.u8()
	if v != envelopeVersion && v != envelopeVersionV2 {
		return e, fmt.Errorf("%w: version %d", ErrEnvelope, v)
	}
	e.Op = cur.opID()
	e.Object = int(cur.u64())
	e.Kind = string(cur.bytes16())
	e.Payload = cur.bytes32()
	if v == envelopeVersionV2 {
		e.Trace = cur.u64()
		e.Span = cur.u64()
	}
	if err := cur.finish(); err != nil {
		return Envelope{}, err
	}
	return e, nil
}

// AppendBinary appends the response's wire encoding to b. Layout mirrors
// Envelope with the status byte in place of the kind:
//
//	u8  version
//	u64 op.client   u64 op.seq   u8 op.kind
//	u64 object
//	u8  status
//	u32 len(payload) payload bytes
//	u16 len(detail)  detail bytes
func (r Response) AppendBinary(b []byte) ([]byte, error) {
	if len(r.Payload) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: payload of length %d", ErrEnvelope, len(r.Payload))
	}
	detail := r.Detail
	if len(detail) > math.MaxUint16 {
		detail = detail[:math.MaxUint16]
	}
	b = append(b, envelopeVersion)
	b = appendOpID(b, r.Op)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Object))
	b = append(b, byte(r.Status))
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Payload)))
	b = append(b, r.Payload...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(detail)))
	b = append(b, detail...)
	return b, nil
}

// MarshalBinary encodes the response.
func (r Response) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(make([]byte, 0, 40+len(r.Payload)+len(r.Detail)))
}

// UnmarshalResponse decodes a response, rejecting trailing bytes.
func UnmarshalResponse(b []byte) (Response, error) {
	var r Response
	cur := cursor{b: b}
	if v := cur.u8(); v != envelopeVersion {
		return r, fmt.Errorf("%w: version %d", ErrEnvelope, v)
	}
	r.Op = cur.opID()
	r.Object = int(cur.u64())
	r.Status = Status(cur.u8())
	r.Payload = cur.bytes32()
	r.Detail = string(cur.bytes16())
	if err := cur.finish(); err != nil {
		return Response{}, err
	}
	return r, nil
}

func appendOpID(b []byte, op OpID) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(op.Client))
	b = binary.BigEndian.AppendUint64(b, uint64(op.Seq))
	return append(b, byte(op.Kind))
}

// cursor is a bounds-checked reader over a wire buffer: the first short read
// latches an error and every later read returns zero values, so decoders can
// parse straight-line and check once at the end.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("%w: truncated at offset %d", ErrEnvelope, c.off)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil || n < 0 || c.off+n > len(c.b) {
		c.fail()
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *cursor) bytes16() []byte {
	b := c.take(2)
	if b == nil {
		return nil
	}
	return c.take(int(binary.BigEndian.Uint16(b)))
}

func (c *cursor) bytes32() []byte {
	b := c.take(4)
	if b == nil {
		return nil
	}
	n := binary.BigEndian.Uint32(b)
	if uint64(n) > uint64(len(c.b)-c.off) {
		c.fail()
		return nil
	}
	return c.take(int(n))
}

func (c *cursor) opID() OpID {
	return OpID{Client: int(int64(c.u64())), Seq: int(int64(c.u64())), Kind: OpKind(c.u8())}
}

func (c *cursor) finish() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrEnvelope, len(c.b)-c.off)
	}
	return nil
}

// RoundInvoker delivers one client's quorum round of RMWs to base objects
// identified by *global* object IDs and waits for at least quorum responses.
// It is the seam a remote cluster plugs a transport into: the in-process
// engines satisfy it trivially, and the TCP transport implements it by
// shipping envelopes. The returned map is keyed by global object ID.
// Implementations may return a partial map together with an error (wrapping
// ErrQuorumUnavailable) when fewer than quorum objects answered.
type RoundInvoker interface {
	InvokeRound(ctx context.Context, client int, targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error)
}
