package dsys

import (
	"fmt"
)

// ClientHandle is a client's interface to the cluster. Handles are created by
// Spawn and must only be used from the spawned function's goroutine.
type ClientHandle struct {
	c    *Cluster
	id   int
	task *clientTask // nil in live mode

	currentOp OpID
}

// ID returns the client's identifier.
func (h *ClientHandle) ID() int { return h.id }

// N returns the number of base objects in the cluster.
func (h *ClientHandle) N() int { return h.c.N() }

// BeginOp marks the start of a high-level operation of the given kind and
// returns its identity. The cluster tracks outstanding operations so that
// policies (the adversary in particular) can classify them.
func (h *ClientHandle) BeginOp(kind OpKind) OpID {
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clientSeq[h.id]++
	op := OpID{Client: h.id, Seq: c.clientSeq[h.id], Kind: kind}
	h.currentOp = op
	c.outstanding = append(c.outstanding, op)
	return op
}

// EndOp marks the end of the client's current high-level operation and clears
// any client-local block holdings registered for it.
func (h *ClientHandle) EndOp() {
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, op := range c.outstanding {
		if op == h.currentOp {
			c.outstanding = append(c.outstanding[:i], c.outstanding[i+1:]...)
			break
		}
	}
	delete(c.clientLocal, h.id)
	h.currentOp = OpID{}
}

// CurrentOp returns the client's current operation identity (zero if none).
func (h *ClientHandle) CurrentOp() OpID { return h.currentOp }

// SetLocalBlocks registers the code blocks the client currently holds in its
// local state (e.g. the encoded WriteSet of an in-progress write) so the
// storage accountant can charge them to the client's location.
func (h *ClientHandle) SetLocalBlocks(refs []BlockRef) {
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(refs) == 0 {
		delete(c.clientLocal, h.id)
		return
	}
	cp := make([]BlockRef, len(refs))
	copy(cp, refs)
	c.clientLocal[h.id] = cp
}

// InvokeAll triggers makeRMW(i) on every base object i and waits until at
// least quorum of them have taken effect. It returns the responses of all
// RMWs that have taken effect by the time the client is rescheduled, keyed by
// object ID. The remaining RMWs stay pending and may take effect later.
func (h *ClientHandle) InvokeAll(makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	targets := make([]int, h.c.N())
	for i := range targets {
		targets[i] = i
	}
	return h.Invoke(targets, makeRMW, quorum)
}

// Invoke triggers makeRMW(obj) on each target object and waits until at least
// quorum responses have been delivered (controlled mode) or applied (live
// mode). In controlled mode the wait can only end early if the cluster is
// closed, in which case ErrHalted is returned.
func (h *ClientHandle) Invoke(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	if quorum > len(targets) {
		return nil, fmt.Errorf("%w: quorum %d, targets %d", ErrBadQuorum, quorum, len(targets))
	}
	for _, obj := range targets {
		if obj < 0 || obj >= h.c.N() {
			return nil, fmt.Errorf("%w: %d", ErrUnknownObject, obj)
		}
	}
	if h.c.opts.mode == Live {
		return h.invokeLive(targets, makeRMW, quorum)
	}
	return h.invokeControlled(targets, makeRMW, quorum)
}

// invokeControlled registers pending RMWs and blocks until the scheduling
// policy has applied a quorum of them and granted the client the run token
// again.
func (h *ClientHandle) invokeControlled(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	c := h.c
	t := h.task
	c.mu.Lock()
	calls := make([]*Call, 0, len(targets))
	for _, obj := range targets {
		rmw := makeRMW(obj)
		call := &Call{Object: obj}
		calls = append(calls, call)
		c.pending = append(c.pending, &pendingRMW{
			seq:    c.nextSeq,
			object: obj,
			op:     h.currentOp,
			rmw:    rmw,
			call:   call,
			owner:  t,
		})
		c.nextSeq++
	}
	t.waitCalls = calls
	t.waitNeed = quorum
	t.state = taskBlocked
	c.runningTask = nil
	c.idleReason = ""
	c.cond.Broadcast()
	for t.state != taskRunning {
		if c.halted {
			t.waitCalls, t.waitNeed = nil, 0
			c.mu.Unlock()
			c.cond.Broadcast()
			return nil, ErrHalted
		}
		c.cond.Wait()
	}
	resp := make(map[int]any, len(calls))
	for _, call := range calls {
		if call.Done {
			resp[call.Object] = call.Response
		}
	}
	t.waitCalls, t.waitNeed = nil, 0
	c.mu.Unlock()
	return resp, nil
}

// invokeLive applies RMWs immediately, serialized per object, skipping
// crashed objects. It returns an error if fewer than quorum objects are
// alive, which models a client waiting forever for a quorum that cannot form.
func (h *ClientHandle) invokeLive(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	c := h.c
	resp := make(map[int]any, len(targets))
	for _, objID := range targets {
		c.mu.Lock()
		obj := c.objects[objID]
		crashed := obj.crashed
		c.mu.Unlock()
		if crashed {
			continue
		}
		rmw := makeRMW(objID)
		obj.liveMu.Lock()
		r := rmw.Apply(obj.state)
		obj.applied++
		obj.liveMu.Unlock()
		resp[objID] = r
	}
	if len(resp) < quorum {
		return resp, fmt.Errorf("%w: only %d of %d required responses available", ErrStuck, len(resp), quorum)
	}
	return resp, nil
}

// Yield releases the run token and immediately requests it back, giving the
// scheduling policy an opportunity to interleave other clients or RMWs.
// Algorithms with internal retry loops (the reader of the adaptive register)
// call it between retries so a controlled run cannot livelock the
// coordinator. It is a no-op in live mode.
func (h *ClientHandle) Yield() error {
	if h.c.opts.mode == Live {
		return nil
	}
	c := h.c
	t := h.task
	c.mu.Lock()
	defer c.mu.Unlock()
	t.state = taskReady
	t.ticket = c.nextTicket
	c.nextTicket++
	c.readyQ = append(c.readyQ, t)
	c.runningTask = nil
	c.idleReason = ""
	c.cond.Broadcast()
	for t.state != taskRunning {
		if c.halted {
			return ErrHalted
		}
		c.cond.Wait()
	}
	return nil
}
