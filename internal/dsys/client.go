package dsys

import (
	"context"
	"fmt"
	"time"

	"spacebounds/internal/trace"
)

// ClientHandle is a client's interface to the cluster. Handles are created by
// Spawn, SpawnScoped or RunScoped and must only be used from their task's
// goroutine. A handle is scoped to the contiguous object region
// [base, base+span): N() reports span and all object IDs it accepts and
// returns are region-local, which is how several register emulations
// multiplex over one cluster without knowing about each other.
type ClientHandle struct {
	c    *Cluster
	id   int
	task *clientTask // nil in live mode
	base int
	span int

	// ctx bounds remote rounds (deadline/cancellation plumbed through the
	// transport's Invoke). Nil means context.Background(). The in-process
	// engines ignore it: controlled-mode schedules must stay deterministic.
	ctx context.Context

	currentOp OpID
}

// ID returns the client's identifier.
func (h *ClientHandle) ID() int { return h.id }

// Sub derives a handle for the same client and task, scoped to the contiguous
// sub-region [base, base+span) of this handle's scope (for a whole-cluster
// handle, absolute object IDs). It is how one client task runs register
// operations against several shard regions — the reconfiguration migration
// writer reads the old region and seeds the successors through Sub handles —
// without spawning a task per region, which matters in controlled mode where
// a task can only join another task by busy-waiting.
//
// A region-scoped parent (base > 0) can only narrow its own scope — handing a
// shard's handle out must not let it reach other shards' objects. A
// whole-cluster parent (base 0) may sub-scope anywhere in the *current*
// cluster, including regions grown after the parent was created: routing
// clients and the migration writer hold whole-cluster handles precisely so
// they can follow reconfiguration. The derived handle shares the parent's
// task and must not be used concurrently with it.
func (h *ClientHandle) Sub(base, span int) (*ClientHandle, error) {
	limit := h.span
	if h.base == 0 {
		limit = h.c.N()
	}
	if base < 0 || span < 1 || base+span > limit {
		return nil, fmt.Errorf("%w: sub-scope [%d,%d)", ErrUnknownObject, base, base+span)
	}
	return &ClientHandle{c: h.c, id: h.id, task: h.task, base: h.base + base, span: span, ctx: h.ctx}, nil
}

// WithContext returns a handle for the same client, task and scope whose
// remote rounds are bounded by ctx: a transport-backed Invoke observes the
// context's deadline and cancellation. The in-process engines are unaffected.
// The derived handle shares the parent's task and must not be used
// concurrently with it.
func (h *ClientHandle) WithContext(ctx context.Context) *ClientHandle {
	dup := *h
	dup.ctx = ctx
	return &dup
}

// context returns the handle's round context, defaulting to Background.
func (h *ClientHandle) context() context.Context {
	if h.ctx != nil {
		return h.ctx
	}
	return context.Background()
}

// N returns the number of base objects visible to this handle (the scope's
// span; the whole cluster for handles created by Spawn).
func (h *ClientHandle) N() int { return h.span }

// BeginOp marks the start of a high-level operation of the given kind and
// returns its identity. In controlled mode the cluster tracks outstanding
// operations so that policies (the adversary in particular) can classify
// them; in live mode only the striped per-client sequence counter is touched.
func (h *ClientHandle) BeginOp(kind OpKind) OpID {
	c := h.c
	st := c.stripeFor(h.id)
	st.mu.Lock()
	st.seq[h.id]++
	op := OpID{Client: h.id, Seq: st.seq[h.id], Kind: kind}
	st.mu.Unlock()
	h.currentOp = op
	if c.opts.mode == Controlled {
		c.mu.Lock()
		c.outstanding = append(c.outstanding, op)
		c.mu.Unlock()
	}
	return op
}

// EndOp marks the end of the client's current high-level operation and clears
// any client-local block holdings registered for it.
func (h *ClientHandle) EndOp() {
	c := h.c
	if c.opts.mode == Controlled {
		c.mu.Lock()
		for i, op := range c.outstanding {
			if op == h.currentOp {
				c.outstanding = append(c.outstanding[:i], c.outstanding[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
	}
	st := c.stripeFor(h.id)
	st.mu.Lock()
	delete(st.blocks, h.id)
	st.mu.Unlock()
	h.currentOp = OpID{}
}

// CurrentOp returns the client's current operation identity (zero if none).
func (h *ClientHandle) CurrentOp() OpID { return h.currentOp }

// SetLocalBlocks registers the code blocks the client currently holds in its
// local state (e.g. the encoded WriteSet of an in-progress write) so the
// storage accountant can charge them to the client's location.
func (h *ClientHandle) SetLocalBlocks(refs []BlockRef) {
	st := h.c.stripeFor(h.id)
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(refs) == 0 {
		delete(st.blocks, h.id)
		return
	}
	cp := make([]BlockRef, len(refs))
	copy(cp, refs)
	st.blocks[h.id] = cp
}

// InvokeAll triggers makeRMW(i) on every base object i in the handle's scope
// and waits until at least quorum of them have taken effect. It returns the
// responses of all RMWs that have taken effect by the time the client is
// rescheduled, keyed by scope-local object ID. The remaining RMWs stay
// pending and may take effect later.
func (h *ClientHandle) InvokeAll(makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	targets := make([]int, h.span)
	for i := range targets {
		targets[i] = i
	}
	return h.Invoke(targets, makeRMW, quorum)
}

// Invoke triggers makeRMW(obj) on each target object and waits until at least
// quorum responses have been delivered (controlled mode) or applied (live
// mode). Targets and response keys are scope-local object IDs. In controlled
// mode the wait can only end early if the cluster is closed, in which case
// ErrHalted is returned.
func (h *ClientHandle) Invoke(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	if quorum > len(targets) {
		return nil, fmt.Errorf("%w: quorum %d, targets %d", ErrBadQuorum, quorum, len(targets))
	}
	for _, obj := range targets {
		if obj < 0 || obj >= h.span {
			return nil, fmt.Errorf("%w: %d", ErrUnknownObject, obj)
		}
	}
	hh, sp := h.traceRound()
	if m := h.c.met.Load(); m != nil {
		start := time.Now()
		resp, err := hh.dispatch(targets, makeRMW, quorum)
		m.observeRound(h.base, start, err)
		h.finishRound(&sp)
		return resp, err
	}
	resp, err := hh.dispatch(targets, makeRMW, quorum)
	h.finishRound(&sp)
	return resp, err
}

// dispatch routes a validated round to the engine variant behind the handle.
func (h *ClientHandle) dispatch(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	if h.c.remote != nil {
		return h.invokeRemote(targets, makeRMW, quorum)
	}
	if h.c.opts.mode == Live {
		return h.invokeLive(targets, makeRMW, quorum)
	}
	return h.invokeControlled(targets, makeRMW, quorum)
}

// invokeRemote delegates the round to the remote cluster's transport:
// scope-local targets are translated to global object IDs on the way out and
// responses are translated back, so region-scoped register code runs
// unchanged against a cluster hosted in other processes.
func (h *ClientHandle) invokeRemote(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	global := make([]int, len(targets))
	for i, obj := range targets {
		global[i] = h.base + obj
	}
	resp, err := h.c.remote.InvokeRound(h.context(), h.id, global, func(g int) RMW {
		return makeRMW(g - h.base)
	}, quorum)
	local := make(map[int]any, len(resp))
	for g, r := range resp {
		local[g-h.base] = r
	}
	return local, err
}

// invokeControlled registers pending RMWs and blocks until the scheduling
// policy has applied a quorum of them and granted the client the run token
// again.
func (h *ClientHandle) invokeControlled(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	c := h.c
	t := h.task
	c.mu.Lock()
	calls := make([]*Call, 0, len(targets))
	for _, obj := range targets {
		rmw := makeRMW(obj)
		call := &Call{Object: obj}
		calls = append(calls, call)
		c.pending = append(c.pending, &pendingRMW{
			seq:    c.nextSeq,
			object: h.base + obj,
			op:     h.currentOp,
			rmw:    rmw,
			call:   call,
			owner:  t,
		})
		c.nextSeq++
	}
	t.waitCalls = calls
	t.waitNeed = quorum
	t.state = taskBlocked
	c.runningTask = nil
	c.idleReason = ""
	c.cond.Broadcast()
	for t.state != taskRunning {
		if c.halted {
			t.waitCalls, t.waitNeed = nil, 0
			c.mu.Unlock()
			c.cond.Broadcast()
			return nil, ErrHalted
		}
		c.cond.Wait()
	}
	resp := make(map[int]any, len(calls))
	for _, call := range calls {
		if call.Done {
			resp[call.Object] = call.Response
		}
	}
	t.waitCalls, t.waitNeed = nil, 0
	c.mu.Unlock()
	return resp, nil
}

// invokeLive is the batched live-mode fast path: it applies the whole round
// of RMWs immediately, serialized only by the per-object apply mutexes.
// Crashed objects are skipped via an atomic flag, so the cluster-wide mutex
// is never touched — concurrent clients whose scopes cover disjoint objects
// share no locks at all. It returns an error if fewer than quorum objects are
// alive, which models a client waiting forever for a quorum that cannot form.
func (h *ClientHandle) invokeLive(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	c := h.c
	if c.opts.liveLatency > 0 {
		return h.invokeLiveLatency(targets, makeRMW, quorum)
	}
	objects := c.objs()
	tc := trace.FromContext(h.ctx)
	resp := make(map[int]any, len(targets))
	for _, objID := range targets {
		obj := objects[h.base+objID]
		if obj.crashed.Load() || obj.retired.Load() {
			continue
		}
		rmw := makeRMW(objID)
		obj.liveMu.Lock()
		r := rmw.Apply(obj.state)
		obj.applied++
		c.journalApplyTraced(h.base+objID, rmw, tc)
		obj.liveMu.Unlock()
		resp[objID] = r
	}
	if len(resp) < quorum {
		return resp, fmt.Errorf("%w: only %d of %d required responses available", ErrQuorumUnavailable, len(resp), quorum)
	}
	return resp, nil
}

// invokeLiveLatency is the live path under WithLiveLatency: the round's RMWs
// are dispatched concurrently (the client "sends" to all targets at once, as
// in the message-passing reading of the model) and each base object serves
// them serially, staying busy for the configured service time per RMW. The
// round returns as soon as a quorum of responses has arrived — matching
// Invoke's contract and the registers' quorum logic — while stragglers keep
// applying in the background (their RMWs still take effect, their responses
// are dropped, exactly as for a client rescheduled in controlled mode). The
// queueing this creates on busy objects is the point — it is how a
// finite-capacity storage node behaves under load.
func (h *ClientHandle) invokeLiveLatency(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	c := h.c
	if c.opts.liveBatch > 1 {
		return h.invokeLiveBatched(targets, makeRMW, quorum)
	}
	type result struct {
		obj  int
		resp any
		ok   bool
	}
	objects := c.objs()
	tc := trace.FromContext(h.ctx)
	ch := make(chan result, len(targets))
	dispatched := 0
	for _, objID := range targets {
		obj := objects[h.base+objID]
		if obj.crashed.Load() || obj.retired.Load() {
			continue
		}
		rmw := makeRMW(objID)
		dispatched++
		c.wg.Add(1) // stragglers past the quorum are joined by Close
		go func(objID int, obj *object) {
			defer c.wg.Done()
			obj.liveMu.Lock()
			time.Sleep(c.opts.liveLatency)
			if obj.crashed.Load() || obj.retired.Load() {
				obj.liveMu.Unlock()
				ch <- result{obj: objID}
				return
			}
			r := rmw.Apply(obj.state)
			obj.applied++
			c.journalApplyTraced(h.base+objID, rmw, tc)
			obj.liveMu.Unlock()
			ch <- result{obj: objID, resp: r, ok: true}
		}(objID, obj)
	}
	resp := make(map[int]any, dispatched)
	for received := 0; received < dispatched && len(resp) < quorum; received++ {
		r := <-ch
		if r.ok {
			resp[r.obj] = r.resp
		}
	}
	if len(resp) < quorum {
		return resp, fmt.Errorf("%w: only %d of %d required responses available", ErrQuorumUnavailable, len(resp), quorum)
	}
	return resp, nil
}

// invokeLiveBatched is the coalescing variant of invokeLiveLatency (active
// under WithLiveBatch): instead of spawning a goroutine per RMW that holds
// the object busy for a full service period, each RMW is enqueued at its
// object's service queue and the object's server drains up to liveBatch of
// them per period. The quorum contract is unchanged — the round returns as
// soon as quorum responses have arrived, and stragglers keep queueing and
// take effect later.
func (h *ClientHandle) invokeLiveBatched(targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	c := h.c
	objects := c.objs()
	tc := trace.FromContext(h.ctx)
	ch := make(chan liveResult, len(targets))
	dispatched := 0
	for _, objID := range targets {
		obj := objects[h.base+objID]
		if obj.crashed.Load() || obj.retired.Load() {
			continue
		}
		if c.enqueueLive(obj, &liveReq{rmw: makeRMW(objID), client: h.id, obj: objID, ch: ch, tc: tc}) {
			dispatched++
		}
	}
	resp := make(map[int]any, dispatched)
	for received := 0; received < dispatched && len(resp) < quorum; received++ {
		r := <-ch
		if r.ok {
			resp[r.obj] = r.resp
		}
	}
	if len(resp) < quorum {
		if c.liveHalted.Load() {
			return resp, ErrHalted
		}
		return resp, fmt.Errorf("%w: only %d of %d required responses available", ErrQuorumUnavailable, len(resp), quorum)
	}
	return resp, nil
}

// Yield releases the run token and immediately requests it back, giving the
// scheduling policy an opportunity to interleave other clients or RMWs.
// Algorithms with internal retry loops (the reader of the adaptive register)
// call it between retries so a controlled run cannot livelock the
// coordinator. It is a no-op in live mode.
func (h *ClientHandle) Yield() error {
	if h.c.opts.mode == Live {
		return nil
	}
	c := h.c
	t := h.task
	c.mu.Lock()
	defer c.mu.Unlock()
	t.state = taskReady
	t.ticket = c.nextTicket
	c.nextTicket++
	c.readyQ = append(c.readyQ, t)
	c.runningTask = nil
	c.idleReason = ""
	c.cond.Broadcast()
	for t.state != taskRunning {
		if c.halted {
			return ErrHalted
		}
		c.cond.Wait()
	}
	return nil
}
