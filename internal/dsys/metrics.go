package dsys

import (
	"strconv"
	"sync"
	"time"

	"spacebounds/internal/metrics"
)

// Metric families emitted by the engine. Quorum-round series are labeled by
// region so a sharded store sees per-shard latency; the applies counter is
// node-side (it counts RMWs taking effect on this process's base objects).
const (
	metricRoundSeconds = "spacebounds_dsys_quorum_round_seconds"
	metricRoundsTotal  = "spacebounds_dsys_quorum_rounds_total"
	metricAppliesTotal = "spacebounds_dsys_applies_total"
)

// clusterMetrics holds the cluster's instrumentation handles. It is swapped
// in atomically by SetMetrics so the hot path pays one pointer load (and
// nothing else) when metrics are disabled.
type clusterMetrics struct {
	reg     *metrics.Registry
	applies *metrics.Counter

	mu      sync.RWMutex
	regions map[int]*regionRounds // keyed by region base object ID
}

// regionRounds is the per-region quorum-round instrumentation.
type regionRounds struct {
	latency *metrics.Histogram
	ok      *metrics.Counter
	errs    *metrics.Counter
}

// SetMetrics attaches a metrics registry to the cluster: every quorum round
// from then on observes its latency and outcome, and ApplyOne counts applied
// RMWs. Passing nil detaches. Regions are labeled by their base object ID
// until LabelRegion gives them a human-readable name.
func (c *Cluster) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		c.met.Store(nil)
		return
	}
	c.met.Store(&clusterMetrics{
		reg:     reg,
		applies: reg.Counter(metricAppliesTotal, "RMWs applied to this node's base objects"),
		regions: make(map[int]*regionRounds),
	})
}

// LabelRegion names the region rooted at base object ID base for metric
// labeling, eagerly creating its quorum-round series so they appear on the
// scrape page (and in the doc-sync walk) before the first round runs.
// A no-op when no registry is attached.
func (c *Cluster) LabelRegion(base int, name string) {
	m := c.met.Load()
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.regions[base] = m.newRegionRounds(name)
}

// newRegionRounds builds the three series for one region label. Caller holds
// m.mu (or is initializing).
func (m *clusterMetrics) newRegionRounds(name string) *regionRounds {
	region := metrics.L("region", name)
	return &regionRounds{
		latency: m.reg.Histogram(metricRoundSeconds, "quorum round latency by region", metrics.LatencyBuckets(), region),
		ok:      m.reg.Counter(metricRoundsTotal, "quorum rounds completed by region and outcome", region, metrics.L("outcome", "ok")),
		errs:    m.reg.Counter(metricRoundsTotal, "quorum rounds completed by region and outcome", region, metrics.L("outcome", "error")),
	}
}

// roundsFor returns the instrumentation for the region rooted at base,
// creating it under a numeric label if the region was never named.
func (m *clusterMetrics) roundsFor(base int) *regionRounds {
	m.mu.RLock()
	rr := m.regions[base]
	m.mu.RUnlock()
	if rr != nil {
		return rr
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rr = m.regions[base]; rr == nil {
		rr = m.newRegionRounds(strconv.Itoa(base))
		m.regions[base] = rr
	}
	return rr
}

// observeRound records one finished quorum round for the region at base.
func (m *clusterMetrics) observeRound(base int, start time.Time, err error) {
	rr := m.roundsFor(base)
	rr.latency.ObserveSince(start)
	if err != nil {
		rr.errs.Inc()
	} else {
		rr.ok.Inc()
	}
}
