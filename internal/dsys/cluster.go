package dsys

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spacebounds/internal/oracle"
	"spacebounds/internal/storagecost"
	"spacebounds/internal/trace"
)

// Mode selects how RMW scheduling is performed.
type Mode int

// Cluster modes.
const (
	// Controlled routes every pending RMW through the scheduling Policy; it
	// is deterministic for deterministic policies and client code, and it is
	// the mode the adversary and the experiments use.
	Controlled Mode = iota + 1
	// Live applies RMWs immediately when triggered (serialized per object),
	// trading scheduling control for throughput; used by benchmarks and
	// interactive examples.
	Live
)

type options struct {
	mode        Mode
	policy      Policy
	maxSteps    int
	dataBits    int
	accounting  bool
	keepSeries  bool
	tracer      func(TraceEvent)
	liveLatency time.Duration
	liveBatch   int
}

// Option configures a Cluster.
type Option func(*options)

// WithPolicy sets the scheduling policy for controlled mode. The default is
// FairPolicy.
func WithPolicy(p Policy) Option { return func(o *options) { o.policy = p } }

// WithLiveMode switches the cluster to Live mode.
func WithLiveMode() Option { return func(o *options) { o.mode = Live } }

// WithControlledMode switches the cluster (back) to Controlled mode. It is
// how callers that receive live-mode defaults from a higher layer — the shard
// set in particular — opt into deterministic policy-driven scheduling, which
// is what the fault-schedule simulator runs on.
func WithControlledMode() Option { return func(o *options) { o.mode = Controlled } }

// WithMaxSteps bounds the number of scheduling decisions in controlled mode;
// exceeding the bound marks the run stuck. Zero means unbounded.
func WithMaxSteps(n int) Option { return func(o *options) { o.maxSteps = n } }

// WithLiveLatency gives every base object a fixed RMW service time in live
// mode: each object applies its RMWs serially, holding itself busy for d per
// application, and clients dispatch each round's RMWs concurrently and wait
// for the quorum. This turns the live runtime into a queueing model of a real
// storage cluster — n base objects provide n·(1/d) aggregate service capacity
// — so throughput experiments see shards scale capacity the way added
// storage nodes do. Zero (the default) keeps the synchronous in-process fast
// path.
func WithLiveLatency(d time.Duration) Option { return func(o *options) { o.liveLatency = d } }

// WithLiveBatch lets every base object coalesce up to n pending RMWs into a
// single service period under WithLiveLatency: instead of holding itself busy
// for d per RMW, an object drains up to n queued RMWs, sleeps d once, and
// applies the whole batch atomically. This is the node-level half of the
// batched quorum engine — it amortizes the per-operation service period the
// same way group commit amortizes an fsync — and it multiplies an object's
// service capacity from 1/d to n/d RMWs per second. Values of n below 2 (the
// default) keep the one-RMW-per-period engine. The option has no effect
// without WithLiveLatency.
func WithLiveBatch(n int) Option { return func(o *options) { o.liveBatch = n } }

// WithDataBits records D (the register value size in bits) so that policies
// can classify writes into C⁻/C⁺.
func WithDataBits(d int) Option { return func(o *options) { o.dataBits = d } }

// WithoutAccounting disables per-step storage snapshots (controlled mode).
func WithoutAccounting() Option { return func(o *options) { o.accounting = false } }

// WithSeries retains the full time series of storage cost in the accountant.
func WithSeries() Option { return func(o *options) { o.keepSeries = true } }

// WithTracer installs a callback invoked on every scheduling event; the
// Figure 3 trace example uses it to narrate the adversary's moves.
func WithTracer(fn func(TraceEvent)) Option { return func(o *options) { o.tracer = fn } }

// TraceEventKind enumerates scheduling events.
type TraceEventKind string

// Trace event kinds.
const (
	TraceApply       TraceEventKind = "apply"
	TraceRun         TraceEventKind = "run"
	TraceStall       TraceEventKind = "stall"
	TraceCrash       TraceEventKind = "crash"
	TraceRestart     TraceEventKind = "restart"
	TraceSuspend     TraceEventKind = "suspend"
	TraceResume      TraceEventKind = "resume"
	TraceClientCrash TraceEventKind = "client-crash"
	TraceExtend      TraceEventKind = "extend"
	TraceRetire      TraceEventKind = "retire"
)

// TraceEvent describes one scheduling event.
type TraceEvent struct {
	Step   int
	Kind   TraceEventKind
	Object int
	Client int
	Op     OpID
}

type taskState int

const (
	taskReady taskState = iota + 1
	taskRunning
	taskBlocked
	taskDone
)

type clientTask struct {
	ticket    int64
	client    int
	state     taskState
	crashed   bool // the scheduler crashed this client; it never runs again
	waitCalls []*Call
	waitNeed  int
}

type pendingRMW struct {
	seq    int64
	object int
	op     OpID
	rmw    RMW
	call   *Call
	owner  *clientTask
}

type object struct {
	id      int
	state   State
	crashed atomic.Bool
	// suspended marks the object unresponsive-but-alive: pending RMWs on it
	// must not be applied until it is resumed. This is the "up to f
	// arbitrarily slow base objects" adversary of the model, as opposed to a
	// crash, which is permanent unless RestartObject is called.
	suspended atomic.Bool
	// retired marks the object permanently decommissioned by reconfiguration:
	// its region was drained and its state deallocated. A retired object never
	// applies RMWs again and its blocks no longer count toward storage
	// (Definition 2 — the bits physically left the system), which is how the
	// accounting stays exact when a reconfiguration replaces one region by
	// another. Unlike a crash, retirement cannot be undone.
	retired atomic.Bool
	applied int
	liveMu  sync.Mutex // serializes Apply in live mode

	// Batched live-mode service queue (used only when both WithLiveLatency
	// and WithLiveBatch are active). Enqueued RMWs are drained by the
	// object's server goroutine in batches of up to liveBatch per service
	// period. Entries stay queued until their batch has been applied, so
	// storage snapshots charge their parameters to the channel for exactly
	// the window in which they are in flight (Definition 2).
	qmu        sync.Mutex
	qcond      *sync.Cond
	queue      []*liveReq
	serverOn   bool
	serverGone bool
	periods    int // completed service periods (batched engine only)
}

// liveReq is one RMW enqueued at a base object's batched live-mode queue.
type liveReq struct {
	rmw    RMW
	client int
	obj    int // scope-local object ID, echoed in the result
	ch     chan<- liveResult
	tc     trace.Context // the enqueueing operation's trace context
}

// liveResult is the reply to a liveReq. ok is false when the object crashed
// or the cluster halted before the RMW took effect.
type liveResult struct {
	obj  int
	resp any
	ok   bool
}

// numClientStripes is the number of lock stripes for client bookkeeping
// (per-client sequence numbers and client-local block holdings). Striping
// keeps live-mode clients on different objects from serializing on a single
// cluster-wide mutex; 32 stripes comfortably exceed any benchmarked client
// count.
const numClientStripes = 32

// clientStripe guards the bookkeeping of the clients hashed onto it.
type clientStripe struct {
	mu     sync.Mutex
	seq    map[int]int
	blocks map[int][]BlockRef
}

// TaskHandle joins a spawned client task.
type TaskHandle struct {
	done chan struct{}
	err  error
}

// Wait blocks until the task's function returns and reports its error.
func (t *TaskHandle) Wait() error {
	<-t.done
	return t.err
}

// Cluster is the fault-prone shared memory: a set of base objects plus the
// scheduling machinery that decides when triggered RMWs take effect.
type Cluster struct {
	mu   sync.Mutex
	cond *sync.Cond
	opts options

	// objsPtr holds the base-object list. It is read lock-free on the live
	// fast path and grown copy-on-write (under c.mu) by ExtendObjects, so a
	// reconfiguration can add regions to a running cluster without making hot
	// clients take a lock. Use c.objs() to read it.
	objsPtr atomic.Pointer[[]*object]

	started     bool
	halted      bool
	idleReason  IdleReason
	steps       int
	nextSeq     int64
	nextTicket  int64
	pending     []*pendingRMW
	readyQ      []*clientTask
	runningTask *clientTask
	liveTasks   int

	// tasks lists every controlled-mode client task in spawn order; the
	// coordinator uses it to resolve KindCrashClient decisions against blocked
	// tasks (which are reachable neither through readyQ nor through pending
	// RMW ownership when their calls have all been applied).
	tasks []*clientTask

	// outstanding tracks invoked-but-unreturned high-level operations in
	// invocation order. It is maintained only in controlled mode, where the
	// scheduling policy (the adversary in particular) classifies operations;
	// live mode skips it so the hot path carries no global serialization.
	outstanding []OpID

	stripes [numClientStripes]clientStripe

	// liveHalted mirrors halted for the batched live engine: object servers
	// and enqueuers consult it without taking the cluster-wide mutex, and
	// closed is closed alongside it so servers mid-service-period wake up
	// instead of sleeping out their latency.
	liveHalted atomic.Bool
	closed     chan struct{}

	// remote, when non-nil, makes this a client-side view of a cluster hosted
	// elsewhere: Invoke rounds are delegated to it instead of applying RMWs on
	// the placeholder local objects. Set by NewRemoteCluster.
	remote RoundInvoker

	// met, when non-nil, instruments quorum rounds and applies (see
	// SetMetrics). Atomic so attaching a registry never contends with rounds
	// in flight, and disabled operation costs a single pointer load.
	met atomic.Pointer[clusterMetrics]

	// jour, when non-nil, journals every applied mutating RMW for durability
	// (see SetJournal). Same atomic-pointer attachment pattern as met.
	jour atomic.Pointer[journalHolder]

	// trc, when non-nil, records quorum-round spans and forwards trace
	// contexts to the journal (see SetTracer). Same attachment pattern as met.
	trc atomic.Pointer[clusterTrace]

	acct *storagecost.Accountant
	wg   sync.WaitGroup
}

// stripeFor returns the bookkeeping stripe for a client ID.
func (c *Cluster) stripeFor(client int) *clientStripe {
	return &c.stripes[uint(client)%numClientStripes]
}

// objs returns the current base-object list. The returned slice is immutable:
// growth replaces the whole slice, so holding a snapshot across an operation
// is always safe.
func (c *Cluster) objs() []*object { return *c.objsPtr.Load() }

// NewCluster creates a cluster with the given initial base-object states.
// The default configuration is controlled mode with FairPolicy and storage
// accounting enabled.
func NewCluster(states []State, opts ...Option) *Cluster {
	o := options{mode: Controlled, policy: FairPolicy{}, accounting: true}
	for _, opt := range opts {
		opt(&o)
	}
	c := &Cluster{opts: o, closed: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	for i := range c.stripes {
		c.stripes[i].seq = make(map[int]int)
		c.stripes[i].blocks = make(map[int][]BlockRef)
	}
	objects := make([]*object, 0, len(states))
	for i, s := range states {
		objects = append(objects, &object{id: i, state: s})
	}
	c.objsPtr.Store(&objects)
	if o.accounting {
		c.acct = storagecost.NewAccountant(o.keepSeries)
	}
	if o.mode == Controlled {
		c.wg.Add(1)
		go c.coordinator()
	}
	return c
}

// N returns the number of base objects, retired ones included (object IDs are
// never reused).
func (c *Cluster) N() int { return len(c.objs()) }

// LiveObjectCount returns the number of base objects that have not been
// retired by reconfiguration.
func (c *Cluster) LiveObjectCount() int {
	n := 0
	for _, o := range c.objs() {
		if !o.retired.Load() {
			n++
		}
	}
	return n
}

// ExtendObjects appends new base objects holding the given initial states to
// a running cluster and returns the global ID of the first one. This is the
// growth half of dynamic reconfiguration: a new shard region comes into
// existence with its register's initial states, and storage accounting covers
// it from the moment it exists. The object list is replaced copy-on-write, so
// concurrent live-path clients keep working on their snapshot.
func (c *Cluster) ExtendObjects(states []State) (int, error) {
	if len(states) == 0 {
		return 0, fmt.Errorf("dsys: ExtendObjects with no states")
	}
	c.mu.Lock()
	cur := c.objs()
	base := len(cur)
	grown := make([]*object, base, base+len(states))
	copy(grown, cur)
	for i, s := range states {
		grown = append(grown, &object{id: base + i, state: s})
	}
	c.objsPtr.Store(&grown)
	c.idleReason = ""
	step := c.steps
	tracer := c.opts.tracer
	c.mu.Unlock()
	c.cond.Broadcast()
	if tracer != nil {
		tracer(TraceEvent{Step: step, Kind: TraceExtend, Object: base})
	}
	return base, nil
}

// RetireObjects permanently decommissions the contiguous object region
// [base, base+span): the objects never apply RMWs again and their states stop
// counting toward storage, exactly as if the nodes had been unplugged after a
// drain. Retirement is the terminal lifecycle state of a region; callers must
// only retire regions whose shard has been drained (no routed operations), or
// in-flight operations on the region will fail their quorums.
func (c *Cluster) RetireObjects(base, span int) error {
	c.mu.Lock()
	objects := c.objs()
	if base < 0 || span < 1 || base+span > len(objects) {
		c.mu.Unlock()
		return fmt.Errorf("%w: retire region [%d,%d)", ErrUnknownObject, base, base+span)
	}
	for i := base; i < base+span; i++ {
		objects[i].retired.Store(true)
	}
	c.idleReason = ""
	step := c.steps
	tracer := c.opts.tracer
	c.mu.Unlock()
	c.cond.Broadcast()
	// Wake batched live-mode servers so queued RMWs on the retired objects are
	// answered instead of waiting out a service period.
	for i := base; i < base+span; i++ {
		o := objects[i]
		o.qmu.Lock()
		if o.qcond != nil {
			o.qcond.Broadcast()
		}
		o.qmu.Unlock()
	}
	if tracer != nil {
		tracer(TraceEvent{Step: step, Kind: TraceRetire, Object: base})
	}
	return nil
}

// RetiredObjects returns the IDs of retired base objects.
func (c *Cluster) RetiredObjects() []int {
	var out []int
	for _, o := range c.objs() {
		if o.retired.Load() {
			out = append(out, o.id)
		}
	}
	return out
}

// Mode returns the cluster's scheduling mode.
func (c *Cluster) Mode() Mode { return c.opts.mode }

// ObjectState returns the state of base object i; callers must not mutate it
// concurrently with a running cluster. Tests and experiments use it to
// inspect final states.
func (c *Cluster) ObjectState(i int) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	objects := c.objs()
	if i < 0 || i >= len(objects) {
		return nil
	}
	return objects[i].state
}

// Accountant returns the storage accountant (nil if accounting is disabled).
func (c *Cluster) Accountant() *storagecost.Accountant { return c.acct }

// Steps returns the number of scheduling decisions made so far.
func (c *Cluster) Steps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steps
}

// LogicalTime returns the cluster's deterministic logical clock: the number
// of scheduling decisions made so far. In controlled mode it advances only
// when the coordinator takes a step, so any value observed by client code is
// a pure function of the schedule — the fault simulator feeds it to the
// history recorder so that recorded operation intervals (and therefore
// checker verdicts) are replayable byte for byte.
func (c *Cluster) LogicalTime() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(c.steps)
}

// Start releases the coordinator. Spawn may be called before Start so that an
// experiment can register all of its initial operations and obtain a
// deterministic schedule; Spawn after Start is also permitted.
func (c *Cluster) Start() {
	c.mu.Lock()
	c.started = true
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Close halts the cluster: blocked clients are released with ErrHalted, the
// coordinator exits, and all spawned goroutines are joined.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.halted = true
	c.idleReason = IdleHalted
	c.mu.Unlock()
	if c.liveHalted.CompareAndSwap(false, true) {
		close(c.closed)
	}
	for _, o := range c.objs() {
		o.qmu.Lock()
		if o.qcond != nil {
			o.qcond.Broadcast()
		}
		o.qmu.Unlock()
	}
	c.cond.Broadcast()
	c.wg.Wait()
	c.closeRemote()
}

// CrashObject crashes base object id: pending and future RMWs on it never
// take effect. Crashing more than f of the n = 2f+k objects removes the
// ability to form quorums, exactly as in the model.
func (c *Cluster) CrashObject(id int) error {
	c.mu.Lock()
	objects := c.objs()
	if id < 0 || id >= len(objects) {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	if objects[id].retired.Load() {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrRetiredObject, id)
	}
	objects[id].crashed.Store(true)
	c.idleReason = ""
	step := c.steps
	tracer := c.opts.tracer
	c.mu.Unlock()
	c.cond.Broadcast()
	if tracer != nil {
		tracer(TraceEvent{Step: step, Kind: TraceCrash, Object: id})
	}
	return nil
}

// CrashedObjects returns the IDs of crashed base objects.
func (c *Cluster) CrashedObjects() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for _, o := range c.objs() {
		if o.crashed.Load() {
			out = append(out, o.id)
		}
	}
	return out
}

// RestartObject brings a crashed base object back: future RMWs on it apply
// again, with the object's state as it was at the moment of the crash
// (fail-recover). RMWs that were dropped while the object was down stay lost,
// exactly like messages to a down node. Live-mode fault injection uses it to
// model crash/restart churn.
func (c *Cluster) RestartObject(id int) error {
	c.mu.Lock()
	objects := c.objs()
	if id < 0 || id >= len(objects) {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	if objects[id].retired.Load() {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrRetiredObject, id)
	}
	objects[id].crashed.Store(false)
	c.idleReason = ""
	step := c.steps
	tracer := c.opts.tracer
	c.mu.Unlock()
	c.cond.Broadcast()
	if tracer != nil {
		tracer(TraceEvent{Step: step, Kind: TraceRestart, Object: id})
	}
	return nil
}

// SuspendObject marks a base object unresponsive: pending RMWs on it are not
// applied until ResumeObject. Unlike a crash, suspension is temporary and
// models the "arbitrarily slow but correct" base objects the paper's
// adversary exploits. Scheduling policies normally drive suspension through
// KindSuspendObject decisions so the fault shows up in the deterministic
// schedule; the method is also safe to call directly (e.g. from tests).
func (c *Cluster) SuspendObject(id int) error {
	return c.setSuspended(id, true, TraceSuspend)
}

// ResumeObject clears a suspension set by SuspendObject.
func (c *Cluster) ResumeObject(id int) error {
	return c.setSuspended(id, false, TraceResume)
}

func (c *Cluster) setSuspended(id int, suspended bool, kind TraceEventKind) error {
	c.mu.Lock()
	objects := c.objs()
	if id < 0 || id >= len(objects) {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	objects[id].suspended.Store(suspended)
	c.idleReason = ""
	step := c.steps
	tracer := c.opts.tracer
	c.mu.Unlock()
	c.cond.Broadcast()
	if tracer != nil {
		tracer(TraceEvent{Step: step, Kind: kind, Object: id})
	}
	return nil
}

// SuspendedObjects returns the IDs of currently suspended base objects.
func (c *Cluster) SuspendedObjects() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for _, o := range c.objs() {
		if o.suspended.Load() {
			out = append(out, o.id)
		}
	}
	return out
}

// CrashedClients returns the client IDs crashed by the scheduler, in crash
// order (controlled mode only).
func (c *Cluster) CrashedClients() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	seen := make(map[int]bool)
	for _, t := range c.tasks {
		if t.crashed && !seen[t.client] {
			seen[t.client] = true
			out = append(out, t.client)
		}
	}
	return out
}

// crashClientLocked marks every live task of the given client as crashed: the
// task never receives the run token again, is never made ready by a completed
// RMW, and no longer counts as live (so runs with crashed clients still
// quiesce). Its already-triggered RMWs stay pending — in-flight messages take
// effect even after the sender dies, exactly as in the model. The blocked
// goroutine itself is released with ErrHalted when the cluster closes.
// Callers must hold c.mu. It reports whether any task was crashed.
func (c *Cluster) crashClientLocked(client int) bool {
	hit := false
	for _, t := range c.tasks {
		if t.client != client || t.crashed || t.state == taskDone || t.state == taskRunning {
			continue
		}
		if t.state == taskReady {
			c.removeReadyLocked(t)
		}
		t.crashed = true
		c.liveTasks--
		hit = true
	}
	return hit
}

// Spawn runs fn as a client task for the given client ID and returns a join
// handle. In controlled mode the task runs only when the scheduling policy
// grants it the run token. The handle sees the whole cluster.
func (c *Cluster) Spawn(clientID int, fn func(h *ClientHandle) error) *TaskHandle {
	return c.SpawnScoped(clientID, 0, c.N(), fn)
}

// SpawnScoped is Spawn restricted to the contiguous object region
// [base, base+span): the handle's N() reports span and its object IDs are
// region-local. Shards use it to multiplex several register emulations over
// one cluster — a register built for n objects runs unchanged inside an
// n-object region.
func (c *Cluster) SpawnScoped(clientID, base, span int, fn func(h *ClientHandle) error) *TaskHandle {
	th := &TaskHandle{done: make(chan struct{})}
	if c.opts.mode == Live {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer close(th.done)
			h := &ClientHandle{c: c, id: clientID, base: base, span: span}
			th.err = fn(h)
		}()
		return th
	}
	c.mu.Lock()
	t := &clientTask{ticket: c.nextTicket, client: clientID, state: taskReady}
	c.nextTicket++
	c.readyQ = append(c.readyQ, t)
	c.tasks = append(c.tasks, t)
	c.liveTasks++
	c.idleReason = ""
	c.mu.Unlock()
	c.cond.Broadcast()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer close(th.done)
		h := &ClientHandle{c: c, id: clientID, task: t, base: base, span: span}
		// Wait for the first grant of the run token.
		c.mu.Lock()
		for t.state != taskRunning && !c.halted {
			c.cond.Wait()
		}
		if t.state != taskRunning {
			t.state = taskDone
			if !t.crashed {
				// Crashed tasks were already removed from the ready queue and
				// subtracted from the live count at crash time.
				c.removeReadyLocked(t)
				c.liveTasks--
			}
			c.mu.Unlock()
			c.cond.Broadcast()
			th.err = ErrHalted
			return
		}
		c.mu.Unlock()

		th.err = fn(h)

		c.mu.Lock()
		t.state = taskDone
		if c.runningTask == t {
			c.runningTask = nil
		}
		if !t.crashed {
			c.liveTasks--
		}
		c.mu.Unlock()
		c.cond.Broadcast()
	}()
	return th
}

// RunScoped executes fn as a client over the object region [base, base+span)
// and returns its error. In live mode it is the batched fast path: fn runs
// inline in the caller's goroutine — no task goroutine, no join channel, no
// cluster-wide lock — so concurrent callers on disjoint regions only ever
// contend on the per-object apply mutexes. The call registers with the
// cluster's join group, so Close still waits for in-flight operations. In
// controlled mode it degenerates to SpawnScoped followed by Wait.
func (c *Cluster) RunScoped(clientID, base, span int, fn func(h *ClientHandle) error) error {
	if c.opts.mode == Live {
		c.wg.Add(1)
		defer c.wg.Done()
		h := &ClientHandle{c: c, id: clientID, base: base, span: span}
		return fn(h)
	}
	return c.SpawnScoped(clientID, base, span, fn).Wait()
}

// WaitIdle blocks until the cluster can make no further progress and reports
// why: all tasks finished (IdleQuiesced), the policy stalled or the step
// budget ran out while clients are still waiting (IdleStuck), or Close was
// called (IdleHalted). In live mode there is no central scheduler, so WaitIdle
// returns IdleQuiesced immediately; callers join their task handles instead.
func (c *Cluster) WaitIdle() IdleReason {
	if c.opts.mode == Live {
		return IdleQuiesced
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.idleReason == "" {
		c.cond.Wait()
	}
	return c.idleReason
}

// SampleStorage computes and records a storage snapshot outside the normal
// per-step sampling; it is the way live-mode callers observe storage cost.
func (c *Cluster) SampleStorage() *storagecost.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := c.snapshotLocked()
	if c.acct != nil {
		c.acct.Observe(snap)
	}
	return snap
}

// snapshotLocked aggregates the storage reports of base objects, client-local
// holdings, and pending RMW parameters. Callers must hold c.mu; each object's
// apply lock and the stripe locks are taken one at a time underneath it, so
// live-mode snapshots never observe a state mid-Apply (the sample as a whole
// is still advisory in live mode: objects are sampled one after another while
// operations may be in flight).
func (c *Cluster) snapshotLocked() *storagecost.Snapshot {
	objects := c.objs()
	reporters := make([]storagecost.Reporter, 0, len(objects)+len(c.pending))
	for _, o := range objects {
		// Retired objects were decommissioned by reconfiguration: their state
		// was deallocated with them, so none of their bits count any more.
		if o.retired.Load() {
			continue
		}
		// Take the apply mutex first and the queue mutex inside it — the
		// same order as the object server's apply-then-dequeue step — so a
		// batched live-mode sample sees each in-flight RMW in exactly one
		// place: in the channel while queued, in the object state afterwards.
		o.liveMu.Lock()
		refs := o.state.Blocks()
		o.qmu.Lock()
		queued := make([]*liveReq, len(o.queue))
		copy(queued, o.queue)
		o.qmu.Unlock()
		o.liveMu.Unlock()
		reporters = append(reporters, blockReporter{
			loc:  storagecost.Location{Kind: storagecost.BaseObject, ID: o.id},
			refs: refs,
		})
		for _, req := range queued {
			reporters = append(reporters, blockReporter{
				loc:  storagecost.Location{Kind: storagecost.Channel, ID: req.client},
				refs: req.rmw.Blocks(),
			})
		}
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		for client, refs := range st.blocks {
			reporters = append(reporters, blockReporter{
				loc:  storagecost.Location{Kind: storagecost.Client, ID: client},
				refs: refs,
			})
		}
		st.mu.Unlock()
	}
	for _, p := range c.pending {
		reporters = append(reporters, blockReporter{
			loc:  storagecost.Location{Kind: storagecost.Channel, ID: p.op.Client},
			refs: p.rmw.Blocks(),
		})
	}
	if h := c.jour.Load(); h != nil {
		reporters = append(reporters, durableReporter{j: h.j})
	}
	return storagecost.Collect(reporters, nil)
}

// outstandingWritesLocked returns outstanding write operations in invocation
// order. Callers must hold c.mu.
func (c *Cluster) outstandingWritesLocked() []oracle.WriteID {
	var out []oracle.WriteID
	for _, op := range c.outstanding {
		if op.Kind == OpWrite {
			out = append(out, op.WriteID())
		}
	}
	return out
}

// OutstandingOps returns the currently outstanding high-level operations in
// invocation order. Outstanding operations are tracked in controlled mode
// only (they exist for scheduling policies); in live mode the result is
// always empty.
func (c *Cluster) OutstandingOps() []OpID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]OpID, len(c.outstanding))
	copy(out, c.outstanding)
	return out
}

// enqueueLive appends a request to the object's batched service queue,
// lazily starting the object's server goroutine on first use. It reports
// false when the cluster has halted and the request will never be served;
// the caller then counts the request as answered with a failure.
func (c *Cluster) enqueueLive(o *object, req *liveReq) bool {
	o.qmu.Lock()
	if c.liveHalted.Load() || o.serverGone {
		o.qmu.Unlock()
		return false
	}
	if !o.serverOn {
		o.serverOn = true
		o.qcond = sync.NewCond(&o.qmu)
		c.wg.Add(1)
		go c.objectServer(o)
	}
	o.queue = append(o.queue, req)
	o.qcond.Signal()
	o.qmu.Unlock()
	return true
}

// objectServer is the batched live-mode service loop of one base object: it
// drains up to liveBatch queued RMWs, holds the object busy for one service
// period, applies the whole batch atomically, and replies. Requests are
// dequeued only after they have been applied — and the dequeue happens under
// the object's apply mutex — so a storage snapshot observes every in-flight
// RMW in exactly one place: in the channel while pending, in the base-object
// state afterwards.
func (c *Cluster) objectServer(o *object) {
	defer c.wg.Done()
	maxBatch := c.opts.liveBatch
	for {
		o.qmu.Lock()
		for len(o.queue) == 0 && !c.liveHalted.Load() {
			o.qcond.Wait()
		}
		if c.liveHalted.Load() {
			pending := o.queue
			o.queue = nil
			o.serverGone = true
			o.qmu.Unlock()
			for _, r := range pending {
				r.ch <- liveResult{obj: r.obj}
			}
			return
		}
		n := len(o.queue)
		if n > maxBatch {
			n = maxBatch
		}
		batch := make([]*liveReq, n)
		copy(batch, o.queue[:n])
		o.qmu.Unlock()

		// One service period covers the whole batch: this is the coalescing
		// that lifts the object's capacity from 1/d to liveBatch/d. A halt
		// interrupts the period; the drain branch above then answers the
		// still-queued batch.
		timer := time.NewTimer(c.opts.liveLatency)
		select {
		case <-timer.C:
		case <-c.closed:
			timer.Stop()
			continue
		}

		results := make([]liveResult, n)
		o.liveMu.Lock()
		if o.crashed.Load() || o.retired.Load() {
			// Crashed objects drop their RMWs; retired objects were
			// decommissioned by reconfiguration and must never mutate again —
			// a straggler queued past its round's quorum is answered failed,
			// like a message to an unplugged node.
			for i, r := range batch {
				results[i] = liveResult{obj: r.obj}
			}
		} else {
			for i, r := range batch {
				results[i] = liveResult{obj: r.obj, resp: r.rmw.Apply(o.state), ok: true}
				c.journalApplyTraced(o.id, r.rmw, r.tc)
			}
			o.applied += n
		}
		o.qmu.Lock()
		o.queue = o.queue[n:]
		o.periods++
		o.qmu.Unlock()
		o.liveMu.Unlock()
		for i, r := range batch {
			r.ch <- results[i]
		}
	}
}

// LiveServicePeriods returns the total number of service periods the batched
// live engine has completed across all base objects. With coalescing active
// it is strictly smaller than the number of applied RMWs; tests use the ratio
// to prove that batching actually amortizes service time.
func (c *Cluster) LiveServicePeriods() int {
	total := 0
	for _, o := range c.objs() {
		o.qmu.Lock()
		total += o.periods
		o.qmu.Unlock()
	}
	return total
}

func (c *Cluster) removeReadyLocked(t *clientTask) {
	for i, r := range c.readyQ {
		if r == t {
			c.readyQ = append(c.readyQ[:i], c.readyQ[i+1:]...)
			return
		}
	}
}
