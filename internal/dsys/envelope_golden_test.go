package dsys

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// goldenOp is the operation identity used by every golden case.
var goldenOp = OpID{Client: 11, Seq: 42, Kind: OpWrite}

// goldenV1 is the pinned version-1 wire encoding of
// Envelope{Op: goldenOp, Object: 5, Kind: "abd.update", Payload: 0xdeadbe}.
// These bytes are what every pre-trace peer emits and expects; they must
// never change.
const goldenV1 = "01" + // version 1
	"000000000000000b" + // op.client = 11
	"000000000000002a" + // op.seq = 42
	"01" + // op.kind = OpWrite
	"0000000000000005" + // object = 5
	"000a" + "6162642e757064617465" + // kind = "abd.update"
	"00000003" + "deadbe" // payload

// goldenV2 is the same envelope carrying a trace context: version byte 2 and
// the two trace words appended, everything in between byte-identical to v1.
const goldenV2 = "02" +
	"000000000000000b" +
	"000000000000002a" +
	"01" +
	"0000000000000005" +
	"000a" + "6162642e757064617465" +
	"00000003" + "deadbe" +
	"1122334455667788" + // trace
	"99aabbccddeeff00" // span

func goldenEnvelope() Envelope {
	return Envelope{Op: goldenOp, Object: 5, Kind: "abd.update", Payload: []byte{0xde, 0xad, 0xbe}}
}

// TestEnvelopeGoldenV1 pins the untraced encoding to the exact pre-trace
// bytes: an envelope with a zero trace context must emit version 1, and the
// pinned version-1 bytes must decode to an envelope with an empty trace
// context — the back-compat contract with peers that predate the extension.
func TestEnvelopeGoldenV1(t *testing.T) {
	want, err := hex.DecodeString(goldenV1)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := goldenEnvelope().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, want) {
		t.Fatalf("untraced envelope bytes drifted from the v1 golden:\n  got  %x\n  want %x", wire, want)
	}
	got, err := UnmarshalEnvelope(want)
	if err != nil {
		t.Fatalf("pinned v1 bytes no longer decode: %v", err)
	}
	if got.Trace != 0 || got.Span != 0 {
		t.Fatalf("v1 envelope decoded with trace context (%d, %d), want empty", got.Trace, got.Span)
	}
	if e := goldenEnvelope(); got.Op != e.Op || got.Object != e.Object || got.Kind != e.Kind || !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("v1 golden decoded to %+v", got)
	}
}

// TestEnvelopeGoldenV2 pins the traced encoding: version byte 2 with the
// trace words trailing, decoding back to the same trace context.
func TestEnvelopeGoldenV2(t *testing.T) {
	want, err := hex.DecodeString(goldenV2)
	if err != nil {
		t.Fatal(err)
	}
	e := goldenEnvelope()
	e.Trace = 0x1122334455667788
	e.Span = 0x99aabbccddeeff00
	wire, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, want) {
		t.Fatalf("traced envelope bytes drifted from the v2 golden:\n  got  %x\n  want %x", wire, want)
	}
	got, err := UnmarshalEnvelope(want)
	if err != nil {
		t.Fatalf("pinned v2 bytes no longer decode: %v", err)
	}
	if got.Trace != e.Trace || got.Span != e.Span {
		t.Fatalf("v2 trace context round-tripped to (%x, %x)", got.Trace, got.Span)
	}
	if got.Op != e.Op || got.Object != e.Object || got.Kind != e.Kind || !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("v2 golden decoded to %+v", got)
	}
}

// TestEnvelopeTraceRoundTrip checks the traced/untraced encode choice across
// the field combinations, including the truncation sweep on a v2 frame.
func TestEnvelopeTraceRoundTrip(t *testing.T) {
	for _, tc := range []struct{ trace, span uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {7, 9},
	} {
		e := goldenEnvelope()
		e.Trace, e.Span = tc.trace, tc.span
		wire, err := e.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wantVersion := byte(envelopeVersion)
		if tc.trace != 0 || tc.span != 0 {
			wantVersion = envelopeVersionV2
		}
		if wire[0] != wantVersion {
			t.Fatalf("trace (%d,%d) encoded as version %d, want %d", tc.trace, tc.span, wire[0], wantVersion)
		}
		got, err := UnmarshalEnvelope(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got.Trace != tc.trace || got.Span != tc.span {
			t.Fatalf("trace (%d,%d) round-tripped to (%d,%d)", tc.trace, tc.span, got.Trace, got.Span)
		}
	}
	// Every strict prefix of a traced frame is rejected.
	e := goldenEnvelope()
	e.Trace, e.Span = 3, 4
	wire, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(wire); n++ {
		if _, err := UnmarshalEnvelope(wire[:n]); err == nil {
			t.Fatalf("v2 prefix of %d bytes accepted", n)
		}
	}
}
