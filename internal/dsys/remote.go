package dsys

import (
	"fmt"
	"io"

	"spacebounds/internal/trace"
)

// emptyState is the placeholder state of a base object whose real state lives
// in another process. A remote cluster holds one per object so that scope
// arithmetic (N(), Sub) and advisory storage sampling keep working; it stores
// no blocks, so it contributes nothing to Definition-2 accounting — the real
// charge is computed where the state actually lives.
type emptyState struct{}

// Blocks implements State.
func (emptyState) Blocks() []BlockRef { return nil }

// NewRemoteCluster creates a client-side view of a cluster whose n base
// objects are hosted elsewhere: every Invoke round is delegated to the given
// RoundInvoker (a transport) instead of applying RMWs locally. The register
// emulations run unchanged on top of it — they see the same ClientHandle API —
// which is what turns the one-process simulation into a real client talking to
// a real cluster. Remote clusters run in live mode with accounting disabled;
// controlled (policy-driven) scheduling is inherently in-process and is not
// available remotely.
func NewRemoteCluster(n int, inv RoundInvoker) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("dsys: remote cluster with %d objects", n))
	}
	if inv == nil {
		panic("dsys: remote cluster with nil invoker")
	}
	states := make([]State, n)
	for i := range states {
		states[i] = emptyState{}
	}
	c := NewCluster(states, WithLiveMode(), WithoutAccounting())
	c.remote = inv
	return c
}

// RemoteInvoker returns the RoundInvoker of a remote cluster (nil for local
// clusters).
func (c *Cluster) RemoteInvoker() RoundInvoker { return c.remote }

// closeRemote shuts down the transport behind a remote cluster, if it owns
// one that is closable. Called from Close so that Set.Close / Store.Close
// tears transports down along with everything else.
func (c *Cluster) closeRemote() {
	if cl, ok := c.remote.(io.Closer); ok {
		// Transport close errors have nowhere to go during teardown; the
		// transport itself surfaces them on the operation paths.
		_ = cl.Close()
	}
}

// ApplyOne applies a single RMW to base object id (a global ID) immediately,
// serialized by the object's apply mutex. It is the server-side entry point a
// transport uses to make a decoded remote RMW take effect; the object's
// lifecycle flags map onto the envelope statuses via the returned sentinel
// errors (ErrUnknownObject, ErrRetiredObject, ErrObjectDown, ErrHalted).
func (c *Cluster) ApplyOne(id int, rmw RMW) (any, error) {
	return c.ApplyOneTraced(id, rmw, trace.Context{})
}

// ApplyOneTraced is ApplyOne carrying the trace context the RMW's envelope
// arrived with: a sampled apply forwards it to the journal so WAL stages
// record under the originating operation's trace. The zero context makes it
// exactly ApplyOne.
func (c *Cluster) ApplyOneTraced(id int, rmw RMW, tc trace.Context) (any, error) {
	if c.liveHalted.Load() {
		return nil, ErrHalted
	}
	objects := c.objs()
	if id < 0 || id >= len(objects) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	o := objects[id]
	if o.retired.Load() {
		return nil, fmt.Errorf("%w: %d", ErrRetiredObject, id)
	}
	if o.crashed.Load() {
		return nil, fmt.Errorf("%w: %d", ErrObjectDown, id)
	}
	o.liveMu.Lock()
	r := rmw.Apply(o.state)
	o.applied++
	c.journalApplyTraced(id, rmw, tc)
	o.liveMu.Unlock()
	if m := c.met.Load(); m != nil {
		m.applies.Inc()
	}
	return r, nil
}
