// Package dsys implements the paper's system model (Section 2): an
// asynchronous fault-prone shared memory consisting of n base objects that
// support atomic read-modify-write (RMW) access by an unbounded set of
// clients, where up to f base objects and any number of clients may crash.
//
// Clients are ordinary blocking Go code run in goroutines. Every RMW is
// *triggered* by a client and later *takes effect* atomically on its base
// object, at which point its response is delivered. In the default
// controlled mode, the moment at which each pending RMW takes effect is
// chosen by a pluggable scheduling Policy; this is exactly the adversarial
// power the model grants the environment, and it is what the lower-bound
// adversary of Section 4 exploits. A live mode applies RMWs immediately for
// throughput-oriented benchmarks.
//
// The runtime also implements the storage-cost bookkeeping of Section 3:
// base-object states, client-held blocks, and the parameters of pending RMWs
// all report the code blocks they contain, and the cluster aggregates them
// into storagecost snapshots after every scheduling step.
package dsys

import (
	"errors"
	"fmt"

	"spacebounds/internal/oracle"
	"spacebounds/internal/storagecost"
)

// BlockRef describes one code block held somewhere in the system: which
// write's oracle produced it (and with which block number), and its size in
// bits. Locations are stamped by the cluster when it aggregates reports.
type BlockRef struct {
	Source oracle.SourceTag
	Bits   int
}

// State is the algorithm-specific state of a base object. Implementations
// must report every code block they currently store; meta-data (timestamps,
// counters) is not reported and therefore not charged, per Definition 2.
type State interface {
	Blocks() []BlockRef
}

// RMW is a read-modify-write operation on a base object. Apply runs
// atomically with respect to all other RMWs on the same object and returns
// the response delivered to the triggering client. Blocks reports the code
// blocks carried in the RMW's parameters; while the RMW is pending these
// bits are charged to the channel (the paper counts in-flight information as
// part of client/base-object state, which is how algorithms that push cost
// into the network are still covered by the bound).
type RMW interface {
	Apply(s State) (response any)
	Blocks() []BlockRef
}

// OpKind distinguishes the two high-level register operations.
type OpKind int

// Operation kinds.
const (
	OpWrite OpKind = iota + 1
	OpRead
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// OpID identifies a high-level operation: the client performing it, the
// client-local sequence number, and its kind.
type OpID struct {
	Client int
	Seq    int
	Kind   OpKind
}

// WriteID converts a write operation's identity into the oracle's WriteID.
func (o OpID) WriteID() oracle.WriteID { return oracle.WriteID{Client: o.Client, Seq: o.Seq} }

// String implements fmt.Stringer.
func (o OpID) String() string { return fmt.Sprintf("%v(c%d#%d)", o.Kind, o.Client, o.Seq) }

// Call is the handle for one triggered RMW. It records whether the RMW has
// taken effect and, if so, its response.
type Call struct {
	Object   int
	Done     bool
	Response any
}

// Errors returned by cluster operations.
var (
	// ErrHalted is returned from waits when the cluster has been closed.
	ErrHalted = errors.New("dsys: cluster halted")
	// ErrStuck is returned when the scheduling policy refuses to make
	// further progress (the adversary has pinned the run) and a client is
	// still waiting for responses.
	ErrStuck = errors.New("dsys: run is stuck: scheduler refuses further progress")
	// ErrBadQuorum indicates a quorum size larger than the number of targets.
	ErrBadQuorum = errors.New("dsys: quorum larger than number of targets")
	// ErrUnknownObject indicates an RMW aimed at a non-existent base object.
	ErrUnknownObject = errors.New("dsys: unknown base object")
	// ErrQuorumUnavailable is returned when a round cannot gather the required
	// quorum of responses — too many of the targeted base objects are crashed,
	// retired, or unreachable. It wraps ErrStuck: a client waiting for a quorum
	// that cannot form is the live-mode reading of a stuck run, so existing
	// errors.Is(err, ErrStuck) checks keep matching.
	ErrQuorumUnavailable = fmt.Errorf("%w: quorum unavailable", ErrStuck)
	// ErrRetiredObject indicates an operation aimed at a base object that was
	// permanently decommissioned by reconfiguration.
	ErrRetiredObject = errors.New("dsys: base object retired")
	// ErrObjectDown indicates an RMW aimed at a crashed base object; the RMW
	// does not take effect until the object is restarted.
	ErrObjectDown = errors.New("dsys: base object crashed")
	// ErrRecovering indicates a read-only RMW refused by a node that restarted
	// with empty state and has not yet seen a mutating RMW on that object.
	ErrRecovering = errors.New("dsys: base object recovering")
	// ErrRemote wraps transport-level failures that have no more specific
	// sentinel, so remote faults remain distinguishable from local ones.
	ErrRemote = errors.New("dsys: remote invocation failed")
)

// IdleReason explains why WaitIdle returned.
type IdleReason string

// WaitIdle outcomes.
const (
	// IdleQuiesced means all spawned client tasks finished and no applicable
	// RMW remains pending.
	IdleQuiesced IdleReason = "quiesced"
	// IdleStuck means the policy declined to schedule anything although
	// clients are still waiting (an adversarial stall), or the step budget
	// was exhausted.
	IdleStuck IdleReason = "stuck"
	// IdleHalted means Close was called.
	IdleHalted IdleReason = "halted"
)

// blockReporter adapts a located set of BlockRefs to storagecost.Reporter.
type blockReporter struct {
	loc  storagecost.Location
	refs []BlockRef
}

// StorageBlocks implements storagecost.Reporter.
func (r blockReporter) StorageBlocks() []storagecost.BlockInfo {
	out := make([]storagecost.BlockInfo, 0, len(r.refs))
	for _, ref := range r.refs {
		out = append(out, storagecost.BlockInfo{Location: r.loc, Source: ref.Source, Bits: ref.Bits})
	}
	return out
}
