package dsys

import (
	"strconv"
	"sync"

	"spacebounds/internal/trace"
)

// clusterTrace pairs an attached tracer with the region-name table that round
// spans are labeled with — the same base→name mapping clusterMetrics keeps for
// histogram labels, maintained separately so tracing and metrics can be
// attached independently.
type clusterTrace struct {
	tr *trace.Tracer

	mu      sync.RWMutex
	regions map[int]string
}

// SetTracer attaches a tracer to the cluster (nil detaches): quorum rounds on
// handles whose context carries a sampled trace record StageRound spans, and
// journaled applies forward the trace context to a TracedJournal. Same
// atomic-pointer attachment pattern as SetMetrics — attaching never contends
// with rounds in flight, and detached operation costs one pointer load.
func (c *Cluster) SetTracer(tr *trace.Tracer) {
	if tr == nil {
		c.trc.Store(nil)
		return
	}
	c.trc.Store(&clusterTrace{tr: tr, regions: make(map[int]string)})
}

// Tracer returns the attached tracer (nil when none). Layers that sit on top
// of the cluster — the shard batcher in particular — use it to record their
// own stages into the same flight recorder.
func (c *Cluster) Tracer() *trace.Tracer {
	if ct := c.trc.Load(); ct != nil {
		return ct.tr
	}
	return nil
}

// TraceRegion names the object region starting at base for span labeling, so
// round spans carry the shard name rather than a raw object ID. No-op when no
// tracer is attached; call it after SetTracer (mirrors LabelRegion).
func (c *Cluster) TraceRegion(base int, name string) {
	ct := c.trc.Load()
	if ct == nil {
		return
	}
	ct.mu.Lock()
	ct.regions[base] = name
	ct.mu.Unlock()
}

// regionName resolves a region base to its label, falling back to the numeric
// base for regions never named.
func (ct *clusterTrace) regionName(base int) string {
	ct.mu.RLock()
	name, ok := ct.regions[base]
	ct.mu.RUnlock()
	if ok {
		return name
	}
	return strconv.Itoa(base)
}

// traceRound opens a quorum-round span when a tracer is attached and the
// handle's context carries a sampled trace. It returns the handle the round
// should dispatch through — rebound so downstream stages (the transport's
// per-node RPCs, the node-side apply) parent under the round span — and the
// pending span. On the untraced path it returns the receiver and an inert
// Pending: one pointer load, no allocation.
func (h *ClientHandle) traceRound() (*ClientHandle, trace.Pending) {
	ct := h.c.trc.Load()
	if ct == nil {
		return h, trace.Pending{}
	}
	tc := trace.FromContext(h.ctx)
	if !tc.Sampled() {
		return h, trace.Pending{}
	}
	sp := ct.tr.Start(tc, trace.StageRound)
	sp.Span.Shard = ct.regionName(h.base)
	return h.WithContext(trace.NewContext(h.context(), sp.Context())), sp
}

// finishRound closes a round span and links it as a latency exemplar for the
// quorum-round histogram family, so the histogram's tail points at a concrete
// inspectable trace.
func (h *ClientHandle) finishRound(sp *trace.Pending) {
	if !sp.Active() {
		return
	}
	sp.Done()
	if ct := h.c.trc.Load(); ct != nil {
		ct.tr.Exemplar(metricRoundSeconds, trace.Context{Trace: sp.Span.Trace}, sp.Span.Duration)
	}
}
