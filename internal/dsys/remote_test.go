package dsys

import (
	"context"
	"errors"
	"testing"
)

// fakeInvoker answers every target with a fixed value and records Close.
type fakeInvoker struct {
	closed bool
}

func (f *fakeInvoker) InvokeRound(ctx context.Context, client int, targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	out := make(map[int]any, len(targets))
	for _, obj := range targets {
		makeRMW(obj) // the transport always materializes the RMW to encode it
		out[obj] = obj
	}
	return out, nil
}

func (f *fakeInvoker) Close() error {
	f.closed = true
	return nil
}

func TestRemoteClusterDelegatesAndCloses(t *testing.T) {
	inv := &fakeInvoker{}
	c := NewRemoteCluster(3, inv)
	if got := c.RemoteInvoker(); got != RoundInvoker(inv) {
		t.Fatalf("RemoteInvoker = %v, want the dialed invoker", got)
	}
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3", c.N())
	}
	// The placeholder states store no blocks: a remote cluster never charges
	// Definition-2 storage locally.
	if blocks := (emptyState{}).Blocks(); blocks != nil {
		t.Fatalf("emptyState.Blocks = %v, want nil", blocks)
	}
	c.Close()
	if !inv.closed {
		t.Fatal("Close did not shut the transport down")
	}
	// Closing a cluster whose invoker is not a Closer must not panic.
	NewRemoteCluster(1, roundInvokerFunc(func(ctx context.Context, client int, targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
		return nil, nil
	})).Close()
}

type roundInvokerFunc func(ctx context.Context, client int, targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error)

func (f roundInvokerFunc) InvokeRound(ctx context.Context, client int, targets []int, makeRMW func(obj int) RMW, quorum int) (map[int]any, error) {
	return f(ctx, client, targets, makeRMW, quorum)
}

func TestRemoteClusterValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero objects", func() { NewRemoteCluster(0, &fakeInvoker{}) })
	mustPanic("nil invoker", func() { NewRemoteCluster(1, nil) })
	if newTestCluster(2).RemoteInvoker() != nil {
		t.Fatal("local cluster reports a remote invoker")
	}
}

// ApplyOne is the server-side entry point: its error surface is what the
// transport server maps onto envelope statuses.
func TestApplyOneLifecycleErrors(t *testing.T) {
	c := newTestCluster(4, WithLiveMode())
	rmw := addBlockRMW{bits: 8}

	if v, err := c.ApplyOne(1, rmw); err != nil || v.(int) != 1 {
		t.Fatalf("ApplyOne = (%v, %v), want (1, nil)", v, err)
	}
	if v, err := c.ApplyOne(1, readCounterRMW{}); err != nil || v.(int) != 1 {
		t.Fatalf("read after apply = (%v, %v), want (1, nil)", v, err)
	}

	if _, err := c.ApplyOne(-1, rmw); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("negative id: %v, want ErrUnknownObject", err)
	}
	if _, err := c.ApplyOne(4, rmw); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("out-of-range id: %v, want ErrUnknownObject", err)
	}

	if err := c.CrashObject(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyOne(2, rmw); !errors.Is(err, ErrObjectDown) {
		t.Fatalf("crashed object: %v, want ErrObjectDown", err)
	}

	if err := c.RetireObjects(3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyOne(3, rmw); !errors.Is(err, ErrRetiredObject) {
		t.Fatalf("retired object: %v, want ErrRetiredObject", err)
	}

	c.Close()
	if _, err := c.ApplyOne(0, rmw); !errors.Is(err, ErrHalted) {
		t.Fatalf("halted cluster: %v, want ErrHalted", err)
	}
}
