package dsys

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"spacebounds/internal/oracle"
)

// testState is a minimal base-object state: a set of labelled blocks plus an
// integer register used to check RMW atomicity and ordering.
type testState struct {
	mu      sync.Mutex
	counter int
	blocks  []BlockRef
}

func (s *testState) Blocks() []BlockRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BlockRef, len(s.blocks))
	copy(out, s.blocks)
	return out
}

// addBlockRMW appends a block of a given size and bumps the counter.
type addBlockRMW struct {
	source oracle.SourceTag
	bits   int
}

func (r addBlockRMW) Apply(s State) any {
	ts := s.(*testState)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.counter++
	ts.blocks = append(ts.blocks, BlockRef{Source: r.source, Bits: r.bits})
	return ts.counter
}

func (r addBlockRMW) Blocks() []BlockRef {
	return []BlockRef{{Source: r.source, Bits: r.bits}}
}

// readCounterRMW reads the counter without modifying anything.
type readCounterRMW struct{}

func (readCounterRMW) Apply(s State) any {
	ts := s.(*testState)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.counter
}

func (readCounterRMW) Blocks() []BlockRef { return nil }

func newTestCluster(n int, opts ...Option) *Cluster {
	states := make([]State, n)
	for i := range states {
		states[i] = &testState{}
	}
	return NewCluster(states, opts...)
}

func TestControlledQuorumInvoke(t *testing.T) {
	c := newTestCluster(5, WithDataBits(800))
	defer c.Close()

	var got map[int]any
	th := c.Spawn(1, func(h *ClientHandle) error {
		op := h.BeginOp(OpWrite)
		defer h.EndOp()
		src := oracle.SourceTag{Write: op.WriteID(), Index: 1}
		resp, err := h.InvokeAll(func(obj int) RMW { return addBlockRMW{source: src, bits: 100} }, 3)
		got = resp
		return err
	})
	c.Start()
	if err := th.Wait(); err != nil {
		t.Fatalf("task error: %v", err)
	}
	if len(got) < 3 {
		t.Fatalf("got %d responses, want >= 3", len(got))
	}
	if reason := c.WaitIdle(); reason != IdleQuiesced {
		t.Fatalf("WaitIdle = %v, want quiesced", reason)
	}
	// With FairPolicy and no competing clients, all 5 RMWs are eventually
	// applied even though the write only waited for 3.
	applied := 0
	for i := 0; i < c.N(); i++ {
		st := c.ObjectState(i).(*testState)
		applied += st.counter
	}
	if applied != 5 {
		t.Fatalf("applied RMWs = %d, want 5", applied)
	}
	if c.Accountant().MaxTotalBits() < 300 {
		t.Fatalf("accounted max bits = %d, want >= 300", c.Accountant().MaxTotalBits())
	}
}

func TestControlledMultipleClientsInterleave(t *testing.T) {
	c := newTestCluster(3)
	defer c.Close()

	const clients = 4
	handles := make([]*TaskHandle, 0, clients)
	for cl := 1; cl <= clients; cl++ {
		cl := cl
		handles = append(handles, c.Spawn(cl, func(h *ClientHandle) error {
			for round := 0; round < 3; round++ {
				op := h.BeginOp(OpWrite)
				src := oracle.SourceTag{Write: op.WriteID(), Index: round + 1}
				if _, err := h.InvokeAll(func(int) RMW { return addBlockRMW{source: src, bits: 8} }, 2); err != nil {
					return err
				}
				h.EndOp()
			}
			return nil
		}))
	}
	c.Start()
	for i, th := range handles {
		if err := th.Wait(); err != nil {
			t.Fatalf("client %d: %v", i+1, err)
		}
	}
	if reason := c.WaitIdle(); reason != IdleQuiesced {
		t.Fatalf("WaitIdle = %v, want quiesced", reason)
	}
	total := 0
	for i := 0; i < c.N(); i++ {
		total += c.ObjectState(i).(*testState).counter
	}
	// 4 clients x 3 rounds x 3 objects = 36 RMWs must all have been applied.
	if total != 36 {
		t.Fatalf("total applied = %d, want 36", total)
	}
	if len(c.OutstandingOps()) != 0 {
		t.Fatalf("outstanding ops remain: %v", c.OutstandingOps())
	}
}

func TestCrashObjectBlocksQuorum(t *testing.T) {
	c := newTestCluster(3, WithMaxSteps(1000))
	defer c.Close()
	if err := c.CrashObject(0); err != nil {
		t.Fatalf("CrashObject: %v", err)
	}
	if err := c.CrashObject(1); err != nil {
		t.Fatalf("CrashObject: %v", err)
	}
	if got := c.CrashedObjects(); len(got) != 2 {
		t.Fatalf("CrashedObjects = %v", got)
	}
	if err := c.CrashObject(99); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("CrashObject(99) = %v, want ErrUnknownObject", err)
	}

	th := c.Spawn(1, func(h *ClientHandle) error {
		h.BeginOp(OpWrite)
		defer h.EndOp()
		_, err := h.InvokeAll(func(int) RMW { return readCounterRMW{} }, 2)
		return err
	})
	c.Start()
	// Two of three objects are crashed, so a quorum of two can never form:
	// the run must become stuck rather than quiesce.
	if reason := c.WaitIdle(); reason != IdleStuck {
		t.Fatalf("WaitIdle = %v, want stuck", reason)
	}
	c.Close()
	if err := th.Wait(); !errors.Is(err, ErrHalted) {
		t.Fatalf("task error = %v, want ErrHalted", err)
	}
}

func TestInvokeValidation(t *testing.T) {
	c := newTestCluster(2)
	defer c.Close()
	th := c.Spawn(1, func(h *ClientHandle) error {
		if _, err := h.Invoke([]int{0}, func(int) RMW { return readCounterRMW{} }, 2); !errors.Is(err, ErrBadQuorum) {
			return fmt.Errorf("quorum validation: got %v", err)
		}
		if _, err := h.Invoke([]int{7}, func(int) RMW { return readCounterRMW{} }, 1); !errors.Is(err, ErrUnknownObject) {
			return fmt.Errorf("target validation: got %v", err)
		}
		return nil
	})
	c.Start()
	if err := th.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestStallPolicyMarksRunStuck(t *testing.T) {
	// A policy that refuses to apply anything once a single RMW is pending.
	c := newTestCluster(2, WithPolicy(stallAfterFirstRun{}))
	defer c.Close()
	c.Spawn(1, func(h *ClientHandle) error {
		h.BeginOp(OpWrite)
		defer h.EndOp()
		_, err := h.InvokeAll(func(int) RMW { return readCounterRMW{} }, 2)
		return err
	})
	c.Start()
	if reason := c.WaitIdle(); reason != IdleStuck {
		t.Fatalf("WaitIdle = %v, want stuck", reason)
	}
	// The writer's RMWs are pending but never applied.
	if c.ObjectState(0).(*testState).counter != 0 {
		t.Fatal("stalled policy still applied an RMW")
	}
}

// stallAfterFirstRun grants the run token to ready clients but never applies
// any pending RMW.
type stallAfterFirstRun struct{}

func (stallAfterFirstRun) Decide(v *View) Decision {
	if len(v.Ready) > 0 {
		return Decision{Kind: KindRun, Ticket: v.Ready[0].Ticket}
	}
	return Decision{Kind: KindStall}
}

func TestRandomPolicyCompletesRuns(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		c := newTestCluster(4, WithPolicy(NewRandomPolicy(seed)))
		var hs []*TaskHandle
		for cl := 1; cl <= 3; cl++ {
			hs = append(hs, c.Spawn(cl, func(h *ClientHandle) error {
				h.BeginOp(OpWrite)
				defer h.EndOp()
				_, err := h.InvokeAll(func(int) RMW { return readCounterRMW{} }, 3)
				return err
			}))
		}
		c.Start()
		for _, th := range hs {
			if err := th.Wait(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		c.Close()
	}
}

func TestMaxStepsBecomesStuck(t *testing.T) {
	c := newTestCluster(2, WithMaxSteps(1))
	defer c.Close()
	c.Spawn(1, func(h *ClientHandle) error {
		h.BeginOp(OpWrite)
		defer h.EndOp()
		_, err := h.InvokeAll(func(int) RMW { return readCounterRMW{} }, 2)
		return err
	})
	c.Start()
	if reason := c.WaitIdle(); reason != IdleStuck {
		t.Fatalf("WaitIdle = %v, want stuck", reason)
	}
}

func TestLiveMode(t *testing.T) {
	c := newTestCluster(5, WithLiveMode())
	defer c.Close()
	const clients, rounds = 8, 10
	var hs []*TaskHandle
	for cl := 1; cl <= clients; cl++ {
		cl := cl
		hs = append(hs, c.Spawn(cl, func(h *ClientHandle) error {
			for r := 0; r < rounds; r++ {
				op := h.BeginOp(OpWrite)
				src := oracle.SourceTag{Write: op.WriteID(), Index: r + 1}
				if _, err := h.InvokeAll(func(int) RMW { return addBlockRMW{source: src, bits: 16} }, 4); err != nil {
					return err
				}
				h.EndOp()
			}
			return nil
		}))
	}
	for _, th := range hs {
		if err := th.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for i := 0; i < c.N(); i++ {
		total += c.ObjectState(i).(*testState).counter
	}
	if total != clients*rounds*5 {
		t.Fatalf("applied = %d, want %d", total, clients*rounds*5)
	}
	snap := c.SampleStorage()
	if snap.TotalBits != clients*rounds*5*16 {
		t.Fatalf("sampled bits = %d, want %d", snap.TotalBits, clients*rounds*5*16)
	}
}

func TestLiveModeCrashedQuorumError(t *testing.T) {
	c := newTestCluster(3, WithLiveMode())
	defer c.Close()
	if err := c.CrashObject(0); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashObject(1); err != nil {
		t.Fatal(err)
	}
	th := c.Spawn(1, func(h *ClientHandle) error {
		_, err := h.InvokeAll(func(int) RMW { return readCounterRMW{} }, 2)
		return err
	})
	if err := th.Wait(); !errors.Is(err, ErrStuck) {
		t.Fatalf("live invoke with crashed quorum = %v, want ErrStuck", err)
	}
}

func TestPendingRMWCountedAsChannelStorage(t *testing.T) {
	// Use a policy that never applies RMWs; pending parameters must still be
	// charged to the channel.
	c := newTestCluster(2, WithPolicy(stallAfterFirstRun{}), WithDataBits(64))
	defer c.Close()
	c.Spawn(7, func(h *ClientHandle) error {
		op := h.BeginOp(OpWrite)
		defer h.EndOp()
		src := oracle.SourceTag{Write: op.WriteID(), Index: 1}
		h.SetLocalBlocks([]BlockRef{{Source: src, Bits: 64}})
		_, err := h.InvokeAll(func(int) RMW { return addBlockRMW{source: src, bits: 32} }, 2)
		return err
	})
	c.Start()
	if reason := c.WaitIdle(); reason != IdleStuck {
		t.Fatalf("WaitIdle = %v, want stuck", reason)
	}
	snap := c.SampleStorage()
	if snap.ChannelBits != 64 {
		t.Fatalf("ChannelBits = %d, want 64 (two pending RMWs of 32 bits)", snap.ChannelBits)
	}
	if snap.ClientBits != 64 {
		t.Fatalf("ClientBits = %d, want 64", snap.ClientBits)
	}
	// Outside-client contribution for the write excludes both its own client
	// local blocks and its own pending parameters.
	w := oracle.WriteID{Client: 7, Seq: 1}
	if snap.PerWriteOutsideBits[w] != 0 {
		t.Fatalf("PerWriteOutsideBits = %d, want 0", snap.PerWriteOutsideBits[w])
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	var mu sync.Mutex
	var events []TraceEvent
	c := newTestCluster(2, WithTracer(func(ev TraceEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	defer c.Close()
	th := c.Spawn(1, func(h *ClientHandle) error {
		h.BeginOp(OpWrite)
		defer h.EndOp()
		_, err := h.InvokeAll(func(int) RMW { return readCounterRMW{} }, 2)
		return err
	})
	c.Start()
	if err := th.Wait(); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	mu.Lock()
	defer mu.Unlock()
	var runs, applies int
	for _, ev := range events {
		switch ev.Kind {
		case TraceRun:
			runs++
		case TraceApply:
			applies++
		}
	}
	if runs == 0 || applies != 2 {
		t.Fatalf("trace events: %d runs, %d applies (want >0 runs, 2 applies)", runs, applies)
	}
}

func TestYield(t *testing.T) {
	c := newTestCluster(1)
	defer c.Close()
	th := c.Spawn(1, func(h *ClientHandle) error {
		for i := 0; i < 5; i++ {
			if err := h.Yield(); err != nil {
				return err
			}
		}
		return nil
	})
	c.Start()
	if err := th.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestOpKindAndIDStrings(t *testing.T) {
	if OpWrite.String() != "write" || OpRead.String() != "read" || OpKind(9).String() == "" {
		t.Fatal("OpKind strings wrong")
	}
	id := OpID{Client: 2, Seq: 3, Kind: OpRead}
	if id.String() == "" || id.WriteID() != (oracle.WriteID{Client: 2, Seq: 3}) {
		t.Fatal("OpID helpers wrong")
	}
}

func TestAccountingDisabled(t *testing.T) {
	c := newTestCluster(2, WithoutAccounting())
	defer c.Close()
	if c.Accountant() != nil {
		t.Fatal("accountant present despite WithoutAccounting")
	}
	c.Start()
	if c.ObjectState(5) != nil {
		t.Fatal("ObjectState out of range should be nil")
	}
}
