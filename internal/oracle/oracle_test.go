package oracle

import (
	"errors"
	"testing"

	"spacebounds/internal/erasure"
	"spacebounds/internal/value"
)

func TestEncoderGetAndGetAll(t *testing.T) {
	code := erasure.MustReedSolomon(2, 5)
	v := value.FromString("oracle test value", 64)
	w := WriteID{Client: 3, Seq: 1}
	enc := NewEncoder(code, w, v)
	if enc.Write() != w {
		t.Fatalf("Write() = %v, want %v", enc.Write(), w)
	}

	b, tag, err := enc.Get(2)
	if err != nil {
		t.Fatalf("Get(2): %v", err)
	}
	if tag.Write != w || tag.Index != 2 || b.Index != 2 {
		t.Fatalf("unexpected tag %v / block index %d", tag, b.Index)
	}

	blocks, tags, err := enc.GetAll()
	if err != nil {
		t.Fatalf("GetAll: %v", err)
	}
	if len(blocks) != code.N() || len(tags) != code.N() {
		t.Fatalf("GetAll returned %d blocks, want %d", len(blocks), code.N())
	}
	produced := enc.Produced()
	for i := 1; i <= code.N(); i++ {
		if !produced[i] {
			t.Fatalf("index %d not recorded as produced", i)
		}
	}

	// Round-trip through a decoder.
	dec := NewDecoder(code, v.SizeBytes())
	for _, b := range blocks[:code.K()] {
		if err := dec.Push(b); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if dec.Pushed() != code.K() {
		t.Fatalf("Pushed = %d, want %d", dec.Pushed(), code.K())
	}
	got, err := dec.Done()
	if err != nil {
		t.Fatalf("Done: %v", err)
	}
	if !got.Equal(v) {
		t.Fatal("decoded value differs from written value")
	}
}

func TestEncoderExpire(t *testing.T) {
	code := erasure.MustReplication(3)
	enc := NewEncoder(code, WriteID{Client: 1, Seq: 1}, value.FromString("x", 8))
	enc.Expire()
	if _, _, err := enc.Get(1); !errors.Is(err, ErrExpired) {
		t.Fatalf("Get after Expire returned %v, want ErrExpired", err)
	}
	if _, _, err := enc.GetAll(); !errors.Is(err, ErrExpired) {
		t.Fatalf("GetAll after Expire returned %v, want ErrExpired", err)
	}
}

func TestEncoderInvalidIndex(t *testing.T) {
	code := erasure.MustReedSolomon(2, 4)
	enc := NewEncoder(code, WriteID{Client: 1, Seq: 1}, value.FromString("x", 8))
	if _, _, err := enc.Get(0); err == nil {
		t.Fatal("Get(0) succeeded")
	}
}

func TestDecoderNotEnoughBlocks(t *testing.T) {
	code := erasure.MustReedSolomon(3, 5)
	v := value.FromString("needs three blocks", 32)
	enc := NewEncoder(code, WriteID{Client: 2, Seq: 7}, v)
	dec := NewDecoder(code, v.SizeBytes())
	b, _, err := enc.Get(1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := dec.Push(b); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if _, err := dec.Done(); !errors.Is(err, erasure.ErrNotEnoughBlocks) {
		t.Fatalf("Done with 1 block returned %v, want ErrNotEnoughBlocks", err)
	}
	// The oracle expired with the read; further use must fail.
	if err := dec.Push(b); !errors.Is(err, ErrExpired) {
		t.Fatalf("Push after Done returned %v, want ErrExpired", err)
	}
	if _, err := dec.Done(); !errors.Is(err, ErrExpired) {
		t.Fatalf("second Done returned %v, want ErrExpired", err)
	}
}

func TestWriteIDAndSourceTagStrings(t *testing.T) {
	if InitialWrite.String() != "w0" {
		t.Errorf("InitialWrite.String() = %q", InitialWrite.String())
	}
	w := WriteID{Client: 4, Seq: 9}
	if w.String() == "" || (SourceTag{Write: w, Index: 3}).String() == "" {
		t.Error("empty string rendering")
	}
}
