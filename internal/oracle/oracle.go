// Package oracle implements the encoding/decoding oracle model of Section 3
// of the paper (Definition 1, Figure 1).
//
// A write(v) operation at client c initializes an encoding oracle
// oracleE(c, w); the oracle exposes get(i), which returns the code block
// E(v, i). A read operation initializes a decoding oracle oracleD(c, r); the
// reader pushes blocks it has obtained and calls done to decode. Oracles are
// the only source of code blocks in the system: the source function
// (Definition 4) maps every stored block instance back to the ⟨write, index⟩
// pair that produced it, which is what both the storage accountant and the
// lower-bound adversary use to attribute storage to operations.
//
// Oracle-internal state (the value held by an encoder, the blocks accumulated
// by a decoder) is explicitly NOT part of the storage cost (Definition 2).
package oracle

import (
	"errors"
	"fmt"
	"sync"

	"spacebounds/internal/erasure"
	"spacebounds/internal/value"
)

// WriteID identifies a high-level write operation: the client performing it
// and the client-local sequence number of the operation. The zero WriteID
// identifies the implicit write of the initial value v0.
type WriteID struct {
	Client int
	Seq    int
}

// InitialWrite is the distinguished WriteID of the implicit operation that
// wrote the initial value v0 at time zero.
var InitialWrite = WriteID{Client: -1, Seq: 0}

// String renders the WriteID for traces.
func (w WriteID) String() string {
	if w == InitialWrite {
		return "w0"
	}
	return fmt.Sprintf("w(c%d#%d)", w.Client, w.Seq)
}

// SourceTag identifies the origin of a block instance: the write whose oracle
// produced it and the block number i passed to get(i). It realizes the
// source function of Definition 4.
type SourceTag struct {
	Write WriteID
	Index int
}

// String renders the SourceTag for traces.
func (s SourceTag) String() string { return fmt.Sprintf("%v[%d]", s.Write, s.Index) }

// ErrExpired is returned when an oracle is used after its operation returned.
var ErrExpired = errors.New("oracle: oracle has expired")

// Encoder is oracleE(c, w): it produces code blocks of a single value on
// demand. It is safe for concurrent use.
type Encoder struct {
	code  erasure.Code
	write WriteID

	mu       sync.Mutex
	val      value.Value
	expired  bool
	produced map[int]bool // indices handed out so far
}

// NewEncoder initializes oracleE for the given write operation and value.
func NewEncoder(code erasure.Code, w WriteID, v value.Value) *Encoder {
	return &Encoder{code: code, write: w, val: v, produced: make(map[int]bool)}
}

// Write returns the identity of the write operation this oracle serves.
func (e *Encoder) Write() WriteID { return e.write }

// Get returns E(v, i) tagged with its source. It fails if the oracle expired.
func (e *Encoder) Get(i int) (erasure.Block, SourceTag, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.expired {
		return erasure.Block{}, SourceTag{}, ErrExpired
	}
	b, err := e.code.EncodeBlock(e.val.Bytes(), i)
	if err != nil {
		return erasure.Block{}, SourceTag{}, fmt.Errorf("oracle: get(%d): %w", i, err)
	}
	e.produced[i] = true
	return b, SourceTag{Write: e.write, Index: i}, nil
}

// GetAll returns blocks 1..N with their source tags, a convenience wrapper
// over Get used by the register write paths.
func (e *Encoder) GetAll() ([]erasure.Block, []SourceTag, error) {
	blocks := make([]erasure.Block, 0, e.code.N())
	tags := make([]SourceTag, 0, e.code.N())
	for i := 1; i <= e.code.N(); i++ {
		b, tag, err := e.Get(i)
		if err != nil {
			return nil, nil, err
		}
		blocks = append(blocks, b)
		tags = append(tags, tag)
	}
	return blocks, tags, nil
}

// Produced returns the sorted-free set of indices handed out so far; tests
// use it to verify which blocks a write contributed.
func (e *Encoder) Produced() map[int]bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int]bool, len(e.produced))
	for k, v := range e.produced {
		out[k] = v
	}
	return out
}

// Expire marks the oracle expired; it is called when the write returns.
func (e *Encoder) Expire() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.expired = true
}

// Decoder is oracleD(c, r): the reader pushes blocks and calls Done to
// obtain the decoded value. It is safe for concurrent use.
type Decoder struct {
	code    erasure.Code
	dataLen int

	mu      sync.Mutex
	pushed  []erasure.Block
	expired bool
}

// NewDecoder initializes oracleD for a read operation over values of
// dataLen bytes.
func NewDecoder(code erasure.Code, dataLen int) *Decoder {
	return &Decoder{code: code, dataLen: dataLen}
}

// Push hands a block to the oracle (the push(e, i) action of Definition 1).
func (d *Decoder) Push(b erasure.Block) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.expired {
		return ErrExpired
	}
	d.pushed = append(d.pushed, b.Clone())
	return nil
}

// Pushed returns the number of blocks pushed so far.
func (d *Decoder) Pushed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pushed)
}

// Done attempts to decode from the pushed blocks (the done(i) action of
// Definition 1) and expires the oracle. It returns erasure.ErrNotEnoughBlocks
// (the model's ⊥) if the pushed blocks do not determine a value.
func (d *Decoder) Done() (value.Value, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.expired {
		return value.Value{}, ErrExpired
	}
	d.expired = true
	data, err := d.code.Decode(d.dataLen, d.pushed)
	if err != nil {
		return value.Value{}, err
	}
	return value.FromBytes(data), nil
}
