package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"spacebounds/internal/metrics"
)

// TestDisabledTracerZeroAllocs pins the disabled tracer's whole call-site
// pattern — sampling decision, span start, span completion, context
// extraction — at zero allocations, the same contract the metrics package
// pins for a nil registry. This is what lets every hot path carry tracing
// unconditionally.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		bc := tr.Begin()
		sp := tr.Start(bc, StageOp)
		sp.Span.Shard = "s0"
		sp.Done()
		tc := FromContext(ctx)
		sp2 := tr.Start(tc, StageRound)
		sp2.Done()
		tr.Record(Span{})
		tr.Exemplar("family", tc, time.Millisecond)
		_ = tr.SpanID()
	}); n != 0 {
		t.Fatalf("disabled tracer allocates %v per op, want 0", n)
	}
}

// TestUnsampledZeroAllocs pins the enabled-but-unsampled path: a tracer with
// Sample 0 must not allocate either, since storage nodes run with exactly
// this configuration on every unsampled request.
func TestUnsampledZeroAllocs(t *testing.T) {
	tr := New(Options{Sample: 0, Proc: "test", Node: -1})
	if n := testing.AllocsPerRun(1000, func() {
		bc := tr.Begin()
		sp := tr.Start(bc, StageOp)
		sp.Done()
	}); n != 0 {
		t.Fatalf("unsampled path allocates %v per op, want 0", n)
	}
}

// TestSamplingExtremes checks Begin at probability 0 and 1.
func TestSamplingExtremes(t *testing.T) {
	never := New(Options{Sample: 0})
	always := New(Options{Sample: 1})
	for i := 0; i < 100; i++ {
		if never.Begin().Sampled() {
			t.Fatal("Sample: 0 produced a sampled context")
		}
		bc := always.Begin()
		if !bc.Sampled() {
			t.Fatal("Sample: 1 produced an unsampled context")
		}
		if bc.Span != 0 {
			t.Fatalf("root context has Span %d, want 0", bc.Span)
		}
	}
}

// TestSamplingProbability checks that a fractional rate lands in a loose
// band around its expectation.
func TestSamplingProbability(t *testing.T) {
	tr := New(Options{Sample: 0.5})
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if tr.Begin().Sampled() {
			hits++
		}
	}
	if hits < n/4 || hits > 3*n/4 {
		t.Fatalf("Sample: 0.5 hit %d/%d times", hits, n)
	}
}

// TestRecordAndSnapshot checks span recording, process stamping, and the
// ring bound.
func TestRecordAndSnapshot(t *testing.T) {
	tr := New(Options{Sample: 1, Capacity: 8, Proc: "p", Node: 3})
	base := time.Now()
	for i := 0; i < 20; i++ {
		tr.Record(Span{Trace: uint64(i + 1), ID: uint64(100 + i), Stage: StageApply, Start: base.Add(time.Duration(i))})
	}
	got := tr.Snapshot()
	if len(got) != 8 {
		t.Fatalf("ring of capacity 8 holds %d spans", len(got))
	}
	for _, s := range got {
		if s.Trace < 13 {
			t.Fatalf("ring kept span of trace %d; oldest surviving should be 13", s.Trace)
		}
		if s.Proc != "p" || s.Node != 3 {
			t.Fatalf("span not stamped with process identity: %+v", s)
		}
	}
	// Unsampled spans are dropped.
	tr.Record(Span{Trace: 0, Stage: StageApply})
	if len(tr.Snapshot()) != 8 {
		t.Fatal("zero-trace span was recorded")
	}
}

// TestStartDoneParentLinkage checks the Pending helper's ID chaining.
func TestStartDoneParentLinkage(t *testing.T) {
	tr := New(Options{Sample: 1})
	bc := tr.Begin()
	root := tr.Start(bc, StageOp)
	child := tr.Start(root.Context(), StageRound)
	child.Done()
	root.Done()
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	var rootSpan, childSpan Span
	for _, s := range spans {
		switch s.Stage {
		case StageOp:
			rootSpan = s
		case StageRound:
			childSpan = s
		}
	}
	if rootSpan.Parent != 0 {
		t.Fatalf("root span has parent %d", rootSpan.Parent)
	}
	if childSpan.Parent != rootSpan.ID {
		t.Fatalf("child parent %d, want root ID %d", childSpan.Parent, rootSpan.ID)
	}
	if childSpan.Trace != bc.Trace || rootSpan.Trace != bc.Trace {
		t.Fatal("spans carry the wrong trace ID")
	}
}

// TestContextRoundTrip checks context.Context propagation.
func TestContextRoundTrip(t *testing.T) {
	tc := Context{Trace: 7, Span: 9}
	got := FromContext(NewContext(context.Background(), tc))
	if got != tc {
		t.Fatalf("FromContext = %+v, want %+v", got, tc)
	}
	if FromContext(context.Background()).Sampled() {
		t.Fatal("empty context reports sampled")
	}
	if FromContext(nil).Sampled() { //nolint:staticcheck // nil-safety contract
		t.Fatal("nil context reports sampled")
	}
}

// TestAssemble checks grouping, root detection, and ordering.
func TestAssemble(t *testing.T) {
	base := time.Now()
	spans := []Span{
		{Trace: 1, ID: 10, Stage: StageOp, Start: base, Duration: 5 * time.Millisecond},
		{Trace: 1, ID: 11, Parent: 10, Stage: StageRound, Start: base.Add(time.Microsecond)},
		{Trace: 2, ID: 20, Stage: StageOp, Start: base, Duration: 9 * time.Millisecond},
		{Trace: 3, ID: 31, Parent: 30, Stage: StageApply, Start: base}, // rootless fragment
	}
	got := Assemble(spans)
	if len(got) != 3 {
		t.Fatalf("assembled %d traces, want 3", len(got))
	}
	if got[0].Trace != 2 || got[1].Trace != 1 {
		t.Fatalf("slowest-rooted trace not first: %v, %v", got[0].Trace, got[1].Trace)
	}
	if got[2].Trace != 3 || got[2].Root.ID != 0 {
		t.Fatalf("rootless fragment not last: %+v", got[2])
	}
	if len(got[1].Spans) != 2 || got[1].Spans[0].ID != 10 {
		t.Fatalf("trace 1 spans wrong: %+v", got[1].Spans)
	}
}

// TestSlowTraces checks slow-op exemplar capture.
func TestSlowTraces(t *testing.T) {
	tr := New(Options{Sample: 1, Slow: time.Millisecond})
	bc := tr.Begin()
	tr.Record(Span{Trace: bc.Trace, ID: 2, Parent: 1, Stage: StageRound, Start: time.Now()})
	tr.Record(Span{Trace: bc.Trace, ID: 1, Stage: StageOp, Start: time.Now(), Duration: 2 * time.Millisecond})
	slow := tr.SlowTraces()
	if len(slow) != 1 {
		t.Fatalf("%d slow traces, want 1", len(slow))
	}
	if slow[0].Trace != bc.Trace || len(slow[0].Spans) != 2 {
		t.Fatalf("slow trace not assembled: %+v", slow[0])
	}
	// A fast root records no exemplar.
	bc2 := tr.Begin()
	tr.Record(Span{Trace: bc2.Trace, ID: 3, Stage: StageOp, Start: time.Now(), Duration: time.Microsecond})
	if len(tr.SlowTraces()) != 1 {
		t.Fatal("fast root captured as slow trace")
	}
}

// TestExemplars checks the per-family slowest-trace table.
func TestExemplars(t *testing.T) {
	tr := New(Options{Sample: 1})
	tr.Exemplar("fam", Context{Trace: 1}, 2*time.Millisecond)
	tr.Exemplar("fam", Context{Trace: 2}, time.Millisecond) // faster; ignored
	tr.Exemplar("fam", Context{Trace: 3}, 3*time.Millisecond)
	tr.Exemplar("other", Context{Trace: 4}, time.Microsecond)
	ex := tr.Exemplars()
	if ex["fam"].Trace != 3 {
		t.Fatalf("fam exemplar trace %d, want 3", ex["fam"].Trace)
	}
	if ex["other"].Trace != 4 {
		t.Fatalf("other exemplar trace %d, want 4", ex["other"].Trace)
	}
}

// TestHandlerAndParseDump checks the /debug/trace JSON round trip.
func TestHandlerAndParseDump(t *testing.T) {
	tr := New(Options{Sample: 0.25, Slow: 50 * time.Millisecond, Proc: "node-1", Node: 1})
	tr.Record(Span{Trace: 5, ID: 6, Stage: StageWALAppend, Start: time.Now(), Duration: time.Millisecond})
	tr.Exemplar("f", Context{Trace: 5}, time.Millisecond)
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	d, err := ParseDump(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d.Proc != "node-1" || d.Node != 1 || d.Sample != 0.25 || d.SlowSeconds != 0.05 {
		t.Fatalf("dump header wrong: %+v", d)
	}
	if len(d.Spans) != 1 || d.Spans[0].Trace != 5 || d.Spans[0].Stage != StageWALAppend {
		t.Fatalf("dump spans wrong: %+v", d.Spans)
	}
	if d.Exemplars["f"].Trace != 5 {
		t.Fatalf("dump exemplars wrong: %+v", d.Exemplars)
	}
	// A nil tracer serves an empty, parseable dump.
	rec = httptest.NewRecorder()
	(*Tracer)(nil).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if d, err = ParseDump(rec.Body.Bytes()); err != nil || len(d.Spans) != 0 {
		t.Fatalf("nil tracer dump: %+v err %v", d, err)
	}
}

// TestTracerMetrics checks the tracer's own metric families.
func TestTracerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Options{Sample: 1, Metrics: reg})
	bc := tr.Begin()
	tr.Record(Span{Trace: bc.Trace, ID: 1, Stage: StageOp, Start: time.Now()})
	if v := reg.Counter(metricSampledTotal, "").Value(); v != 1 {
		t.Fatalf("sampled counter %d, want 1", v)
	}
	if v := reg.Counter(metricSpansTotal, "").Value(); v != 1 {
		t.Fatalf("spans counter %d, want 1", v)
	}
}

// TestSpanIDUniqueness spot-checks ID allocation for collisions and zeros.
func TestSpanIDUniqueness(t *testing.T) {
	tr := New(Options{Sample: 1})
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := tr.SpanID()
		if id == 0 {
			t.Fatal("allocated span ID 0")
		}
		if seen[id] {
			t.Fatalf("span ID %d allocated twice", id)
		}
		seen[id] = true
	}
}

// TestSpanJSONShape pins the span wire field names that cross-process
// assembly (and the e2e suite) depend on.
func TestSpanJSONShape(t *testing.T) {
	s := Span{Trace: 1, ID: 2, Parent: 3, Stage: StageRPC, Shard: "s0", Node: 2, Epoch: 1, Proc: "node-2", Start: time.Unix(0, 0), Duration: time.Second, Note: "w"}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"trace", "id", "parent", "stage", "shard", "node", "epoch", "proc", "start", "duration_ns", "note"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("span JSON missing %q: %s", key, data)
		}
	}
}
