package trace

import (
	"encoding/json"
	"net/http"
	"sort"
)

// Assembled is one operation's spans gathered by trace ID: the root span (if
// the recorder still holds it) plus every span of the trace ordered by start
// time. Spans from several processes merge into one Assembled the same way —
// trace IDs travel on the wire, so assembly is a pure group-by.
type Assembled struct {
	// Trace is the operation's trace ID.
	Trace uint64 `json:"trace"`
	// Root is the operation's root span (zero-valued if not captured).
	Root Span `json:"root"`
	// Spans are every captured span of the trace, ordered by start time.
	Spans []Span `json:"spans"`
}

// Assemble groups spans by trace ID. Traces whose root span was captured
// come first, slowest root first; rootless fragments (the root was
// overwritten in the ring, or lives in another process's recorder) follow in
// trace-ID order.
func Assemble(spans []Span) []Assembled {
	byTrace := make(map[uint64]*Assembled)
	order := make([]uint64, 0, 8)
	for _, s := range spans {
		a := byTrace[s.Trace]
		if a == nil {
			a = &Assembled{Trace: s.Trace}
			byTrace[s.Trace] = a
			order = append(order, s.Trace)
		}
		a.Spans = append(a.Spans, s)
		if s.Stage == StageOp && s.Parent == 0 {
			a.Root = s
		}
	}
	out := make([]Assembled, 0, len(order))
	for _, id := range order {
		a := byTrace[id]
		sort.Slice(a.Spans, func(i, j int) bool { return a.Spans[i].Start.Before(a.Spans[j].Start) })
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Root.ID != 0, out[j].Root.ID != 0
		if ri != rj {
			return ri
		}
		if ri && out[i].Root.Duration != out[j].Root.Duration {
			return out[i].Root.Duration > out[j].Root.Duration
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// Dump is the /debug/trace response body (and the -trace-out file format):
// one process's flight-recorder contents plus its slow-op exemplars and
// per-family slowest-trace links. Merging dumps from several processes is
// concatenating their Spans and re-running Assemble.
type Dump struct {
	// Proc is the recording process's name.
	Proc string `json:"proc"`
	// Node is the recording process's node index (-1 for clients).
	Node int `json:"node"`
	// Sample is the process's local sampling probability.
	Sample float64 `json:"sample"`
	// SlowSeconds is the slow-op exemplar threshold in seconds (0 = off).
	SlowSeconds float64 `json:"slow_seconds"`
	// Spans is the flight recorder's contents, ordered by start time.
	Spans []Span `json:"spans"`
	// SlowTraces are the retained assembled slow-op exemplars.
	SlowTraces []Assembled `json:"slow_traces,omitempty"`
	// Exemplars maps metric family names to their slowest sampled trace.
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`
}

// Dump captures the tracer's current state in the wire format served by
// Handler (zero value on a nil tracer).
func (t *Tracer) Dump() Dump {
	if t == nil {
		return Dump{Node: -1}
	}
	return Dump{
		Proc:        t.proc,
		Node:        t.node,
		Sample:      t.sample,
		SlowSeconds: t.slow.Seconds(),
		Spans:       t.Snapshot(),
		SlowTraces:  t.SlowTraces(),
		Exemplars:   t.Exemplars(),
	}
}

// Handler serves the flight recorder as JSON — the /debug/trace endpoint.
// Safe on a nil tracer (serves an empty dump).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Dump())
	})
}

// ParseDump decodes one Dump (a /debug/trace response body or a -trace-out
// file).
func ParseDump(data []byte) (Dump, error) {
	var d Dump
	err := json.Unmarshal(data, &d)
	return d, err
}
