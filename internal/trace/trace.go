// Package trace is the system's per-operation tracing layer: a compact trace
// context propagated along the whole RMW path (facade → batcher lanes →
// quorum rounds → transport envelopes → node-side apply → WAL append) and a
// bounded lock-free flight recorder of fixed-shape spans per process.
//
// The design follows the metrics package's discipline, in the same order:
//
//  1. Near-zero overhead when disabled. A nil *Tracer is the disabled tracer:
//     Begin returns the zero (unsampled) Context, Start returns an inert
//     Pending, and every method is nil-safe, so an untraced hot path pays one
//     predictable branch per call site and allocates nothing — a test pins
//     AllocsPerRun == 0.
//  2. Cheap when enabled but unsampled. The sampling decision is one atomic
//     xorshift step; an unsampled operation carries the zero Context, which
//     every downstream call site rejects with a field comparison before doing
//     any work. Only sampled operations allocate (one *Span per recorded
//     stage).
//  3. Bounded. Spans land in a fixed-capacity ring of atomic slots — the
//     flight recorder. Old spans are overwritten, never accumulated; a
//     process under sampling pressure loses history, not memory.
//
// Trace identity is a pair of uint64s: TraceID names the operation, Span the
// stage a child hangs under. Both travel on the wire inside the versioned RMW
// envelope (see internal/dsys), so spans recorded by different processes —
// client, every storage node it fanned out to, a node restarted mid-run —
// stitch into one trace by ID alone.
package trace

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spacebounds/internal/metrics"
)

// Span stage names. The stages are a closed vocabulary so cross-process
// assembly and the doc reference stay in sync with the emitting call sites.
const (
	// StageOp is the root span of one client operation (write or read).
	StageOp = "op"
	// StageBatchWait is the time an operation waited in its shard's batch
	// lane before the shared quorum round dispatched.
	StageBatchWait = "batch-wait"
	// StageRound is one quorum round (an operation may run several).
	StageRound = "quorum-round"
	// StageRPC is one request frame's round trip to one node.
	StageRPC = "rpc"
	// StageApply is the node-side apply of one RMW to a base object.
	StageApply = "apply"
	// StageWALAppend is the write-ahead-log append of one applied RMW
	// (including the fsync when the sync policy fires on this record).
	StageWALAppend = "wal-append"
	// StageWALFsync is the fsync alone, a child of StageWALAppend.
	StageWALFsync = "wal-fsync"
	// StageReconfig is one migration ledger step of a reconfiguration move.
	StageReconfig = "reconfig-step"
)

// Metric families the tracer registers when given a registry.
const (
	metricSpansTotal   = "spacebounds_trace_spans_total"
	metricSampledTotal = "spacebounds_trace_sampled_traces_total"
)

// Context is the compact trace context threaded through an operation: the
// trace ID plus the span the next stage should parent under. The zero Context
// means "not sampled" and is what every disabled or unsampled path carries.
type Context struct {
	// Trace identifies the operation; 0 means unsampled.
	Trace uint64
	// Span is the parent span ID for child stages (0 directly under the
	// trace root).
	Span uint64
}

// Sampled reports whether the context belongs to a sampled operation.
func (c Context) Sampled() bool { return c.Trace != 0 }

// Span is one recorded stage of one operation. Spans are fixed-shape: every
// stage fills the same fields, so the recorder ring, the /debug/trace JSON,
// and cross-process assembly need no per-stage schema.
type Span struct {
	// Trace is the operation's trace ID.
	Trace uint64 `json:"trace"`
	// ID is this span's ID.
	ID uint64 `json:"id"`
	// Parent is the span this stage ran under (0 for the root).
	Parent uint64 `json:"parent,omitempty"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Shard is the shard (region) name, when the stage knows it.
	Shard string `json:"shard,omitempty"`
	// Node is the node index the span was recorded on (-1 for clients).
	Node int `json:"node"`
	// Epoch is the routing epoch, when the stage knows it.
	Epoch int `json:"epoch,omitempty"`
	// Proc is the recording process's name (stamped by Record).
	Proc string `json:"proc,omitempty"`
	// Start is the span's start instant on the recording process's clock.
	Start time.Time `json:"start"`
	// Duration is the span's measured duration.
	Duration time.Duration `json:"duration_ns"`
	// Note carries stage-specific detail (op kind, lane, ledger step).
	Note string `json:"note,omitempty"`
}

// Options configures a Tracer.
type Options struct {
	// Sample is the probability (0..1) that Begin starts a new sampled
	// trace. 0 disables local sampling; propagated sampled contexts are
	// still recorded, which is how storage nodes (which never originate
	// operations) participate.
	Sample float64
	// Slow is the root-span latency threshold above which a completed
	// operation's spans are assembled and retained as a slow-op exemplar.
	// 0 disables slow-op assembly.
	Slow time.Duration
	// Capacity is the flight-recorder ring size in spans (rounded up to a
	// power of two; default 4096).
	Capacity int
	// Proc names the recording process (e.g. "node-2", "client"); it is
	// stamped on every span so merged traces attribute stages to processes.
	Proc string
	// Node is the node index stamped on every span; use -1 for clients.
	Node int
	// Metrics optionally registers the tracer's own families (spans
	// recorded, traces sampled) with a registry.
	Metrics *metrics.Registry
}

// Tracer records spans into a bounded lock-free ring and makes sampling
// decisions. A nil *Tracer is the disabled tracer: every method no-ops and
// allocates nothing.
type Tracer struct {
	proc      string
	node      int
	slow      time.Duration
	sample    float64
	threshold uint64 // Begin samples when rand() <= threshold; 0 disables
	seed      uint64

	ids    atomic.Uint64
	rng    atomic.Uint64
	ring   []atomic.Pointer[Span]
	mask   uint64
	cursor atomic.Uint64

	spans   *metrics.Counter
	sampled *metrics.Counter

	exMu      sync.Mutex
	exemplars map[string]Exemplar

	slowMu     sync.Mutex
	slowTraces []Assembled
}

// maxSlowTraces bounds the retained slow-op exemplar list.
const maxSlowTraces = 16

// New builds a Tracer. The span-ID space is seeded from the wall clock so
// concurrently started processes allocate disjoint IDs with high probability
// (trace IDs only ever need to be unique, never dense or ordered).
func New(o Options) *Tracer {
	capacity := o.Capacity
	if capacity <= 0 {
		capacity = 4096
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	seed := uint64(time.Now().UnixNano())
	t := &Tracer{
		proc:      o.Proc,
		node:      o.Node,
		slow:      o.Slow,
		sample:    o.Sample,
		seed:      mix(seed ^ uint64(len(o.Proc))<<56),
		ring:      make([]atomic.Pointer[Span], size),
		mask:      uint64(size - 1),
		exemplars: make(map[string]Exemplar),
	}
	t.rng.Store(t.seed | 1)
	switch {
	case o.Sample >= 1:
		t.threshold = ^uint64(0)
	case o.Sample > 0:
		t.threshold = uint64(o.Sample * float64(^uint64(0)))
	}
	if o.Metrics != nil {
		t.spans = o.Metrics.Counter(metricSpansTotal, "spans recorded into the trace flight recorder")
		t.sampled = o.Metrics.Counter(metricSampledTotal, "traces started by local sampling")
	}
	return t
}

// mix is splitmix64's output permutation — enough bit diffusion to turn a
// counter (or a clock) into well-spread IDs.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rand advances the tracer's xorshift state and returns the next value.
func (t *Tracer) rand() uint64 {
	for {
		old := t.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if t.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// SpanID allocates a fresh span ID (0 on a nil tracer). IDs are never zero.
func (t *Tracer) SpanID() uint64 {
	if t == nil {
		return 0
	}
	id := mix(t.seed + t.ids.Add(1)*0x9E3779B97F4A7C15)
	if id == 0 {
		id = 1
	}
	return id
}

// Begin makes one local sampling decision: it returns a fresh root Context
// with probability Options.Sample and the zero Context otherwise (always zero
// on a nil tracer). The root Context has Span == 0; the first span recorded
// under it with Parent == 0 is the operation's root span.
func (t *Tracer) Begin() Context {
	if t == nil || t.threshold == 0 {
		return Context{}
	}
	if t.threshold != ^uint64(0) && t.rand() > t.threshold {
		return Context{}
	}
	t.sampled.Inc()
	return Context{Trace: t.SpanID()}
}

// Pending is an in-flight span: allocated on the caller's stack by Start,
// recorded by Done. The zero Pending (what Start returns when the tracer is
// nil or the context unsampled) is inert — every method no-ops — so call
// sites need no branches beyond the ones Start already took.
type Pending struct {
	t *Tracer
	// Span is the span under construction; callers may fill Shard, Epoch,
	// and Note between Start and Done. Trace linkage and timing fields are
	// managed by Start/Done.
	Span Span
}

// Start opens a child span under tc. It returns the inert zero Pending when
// the tracer is nil or tc is unsampled, so the disabled path allocates
// nothing.
func (t *Tracer) Start(tc Context, stage string) Pending {
	if t == nil || tc.Trace == 0 {
		return Pending{}
	}
	return Pending{t: t, Span: Span{
		Trace:  tc.Trace,
		ID:     t.SpanID(),
		Parent: tc.Span,
		Stage:  stage,
		Start:  time.Now(),
	}}
}

// Active reports whether the span is really recording.
func (p *Pending) Active() bool { return p.t != nil }

// Context returns the context child stages should run under: this span as
// the parent (zero when inert).
func (p *Pending) Context() Context {
	if p.t == nil {
		return Context{}
	}
	return Context{Trace: p.Span.Trace, Span: p.Span.ID}
}

// Done closes the span (duration = elapsed since Start) and records it.
func (p *Pending) Done() {
	if p.t == nil {
		return
	}
	p.Span.Duration = time.Since(p.Span.Start)
	p.t.Record(p.Span)
}

// Record stores one completed span in the flight recorder (no-op on a nil
// tracer or an unsampled span). The recorder stamps the process identity;
// callers never set Proc or Node. A root span (StageOp, Parent 0) whose
// duration exceeds the slow threshold additionally snapshots its whole trace
// into the slow-op exemplar list.
func (t *Tracer) Record(s Span) {
	if t == nil || s.Trace == 0 {
		return
	}
	s.Proc = t.proc
	s.Node = t.node
	sp := new(Span)
	*sp = s
	t.ring[(t.cursor.Add(1)-1)&t.mask].Store(sp)
	t.spans.Inc()
	if t.slow > 0 && s.Stage == StageOp && s.Parent == 0 && s.Duration >= t.slow {
		t.noteSlow(s)
	}
}

// noteSlow assembles the spans of one slow root's trace out of the ring and
// retains them, bounded to the most recent maxSlowTraces entries.
func (t *Tracer) noteSlow(root Span) {
	var spans []Span
	for i := range t.ring {
		if sp := t.ring[i].Load(); sp != nil && sp.Trace == root.Trace {
			spans = append(spans, *sp)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	t.slowTraces = append(t.slowTraces, Assembled{Trace: root.Trace, Root: root, Spans: spans})
	if len(t.slowTraces) > maxSlowTraces {
		t.slowTraces = t.slowTraces[len(t.slowTraces)-maxSlowTraces:]
	}
}

// Exemplar records the latency of one sampled operation against a metric
// family, retaining the slowest trace ID seen per family — the link from a
// latency histogram's tail to a concrete inspectable trace.
func (t *Tracer) Exemplar(family string, tc Context, d time.Duration) {
	if t == nil || tc.Trace == 0 {
		return
	}
	t.exMu.Lock()
	defer t.exMu.Unlock()
	if ex, ok := t.exemplars[family]; !ok || d.Seconds() > ex.Seconds {
		t.exemplars[family] = Exemplar{Trace: tc.Trace, Seconds: d.Seconds()}
	}
}

// Exemplar is the slowest sampled operation recorded against one metric
// family: its trace ID and latency.
type Exemplar struct {
	// Trace is the slowest operation's trace ID.
	Trace uint64 `json:"trace"`
	// Seconds is that operation's recorded latency.
	Seconds float64 `json:"seconds"`
}

// Exemplars returns a copy of the per-family slowest-trace table (nil on a
// nil tracer).
func (t *Tracer) Exemplars() map[string]Exemplar {
	if t == nil {
		return nil
	}
	t.exMu.Lock()
	defer t.exMu.Unlock()
	out := make(map[string]Exemplar, len(t.exemplars))
	for k, v := range t.exemplars {
		out[k] = v
	}
	return out
}

// Snapshot returns the flight recorder's current spans ordered by start time
// (nil on a nil tracer). Snapshots taken during concurrent recording may
// miss spans being overwritten, which is the flight-recorder contract.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.ring))
	for i := range t.ring {
		if sp := t.ring[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// SlowTraces returns the retained slow-op exemplar traces, oldest first (nil
// on a nil tracer).
func (t *Tracer) SlowTraces() []Assembled {
	if t == nil {
		return nil
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	return append([]Assembled(nil), t.slowTraces...)
}

// Sample returns the configured sampling probability (0 on a nil tracer).
func (t *Tracer) Sample() float64 {
	if t == nil {
		return 0
	}
	return t.sample
}

// Slow returns the configured slow-op threshold (0 on a nil tracer).
func (t *Tracer) Slow() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// ctxKey is the context.Context key for a trace Context.
type ctxKey struct{}

// NewContext returns a context carrying tc. Call it only for sampled
// contexts; attaching the zero Context is legal but wasted allocation.
func NewContext(ctx context.Context, tc Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the trace Context from ctx (zero when absent or ctx
// is nil).
func FromContext(ctx context.Context) Context {
	if ctx == nil {
		return Context{}
	}
	if tc, ok := ctx.Value(ctxKey{}).(Context); ok {
		return tc
	}
	return Context{}
}
