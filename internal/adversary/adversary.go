// Package adversary implements the scheduling adversary Ad of Section 4
// (Definition 7) and the experiment driver that uses it to exhibit the
// Ω(min(f, c) · D) storage lower bound (Theorem 1) on concrete algorithms.
//
// Ad is parameterized by ℓ (the paper fixes ℓ = D/2 to prove the theorem).
// At every scheduling point it:
//
//  1. lets the longest-pending RMW take effect, provided the RMW was
//     triggered by a write whose storage contribution outside its own client
//     is still at most D-ℓ bits (the set C⁻ℓ) and provided its target base
//     object stores fewer than ℓ bits of code blocks (it is not "frozen",
//     i.e. not in Fℓ);
//  2. otherwise lets some client take local steps, in fair (FIFO) order;
//  3. otherwise stalls, pinning the run.
//
// Because every write must plant at least D bits of distinct blocks outside
// its own client before it can return (Lemma 1), a run scheduled by Ad ends
// pinned with either f+1 objects holding at least ℓ bits each or with every
// one of the c outstanding writes having contributed more than D-ℓ bits —
// in both cases the storage is at least min(f+1, c) · min(ℓ, D-ℓ) bits,
// which with ℓ = D/2 is the Ω(min(f, c)·D) bound.
package adversary

import (
	"fmt"

	"spacebounds/internal/dsys"
	"spacebounds/internal/oracle"
	"spacebounds/internal/register"
	"spacebounds/internal/value"
	"spacebounds/internal/workload"
)

// Policy is the adversary Ad as a dsys scheduling policy.
type Policy struct {
	// EllBits is ℓ in bits; objects holding at least EllBits of code blocks
	// are frozen.
	EllBits int
	// DataBits is D in bits; writes that have contributed more than
	// DataBits-EllBits outside their own client are starved. If zero, the
	// cluster's configured data size is used.
	DataBits int
}

var _ dsys.Policy = (*Policy)(nil)

// NewPolicy returns Ad with the given ℓ (in bits).
func NewPolicy(ellBits int) *Policy { return &Policy{EllBits: ellBits} }

// Decide implements dsys.Policy.
func (p *Policy) Decide(v *dsys.View) dsys.Decision {
	dBits := p.DataBits
	if dBits == 0 {
		dBits = v.DataBits
	}

	// Classify base objects and outstanding writes from the storage snapshot.
	frozen := map[int]bool{}
	light := map[oracle.WriteID]bool{}
	if v.Storage != nil {
		frozen = v.Storage.Full(p.EllBits)
		for _, w := range v.Storage.LightWrites(v.OutstandingWrites, dBits, p.EllBits) {
			light[w] = true
		}
	} else {
		for _, w := range v.OutstandingWrites {
			light[w] = true
		}
	}

	// Rule 1: the longest-pending RMW by a light write on a non-frozen,
	// non-crashed base object.
	bestIdx := -1
	var bestSeq int64
	for _, pd := range v.Pending {
		if pd.ObjectCrashed || frozen[pd.Object] {
			continue
		}
		if pd.Op.Kind != dsys.OpWrite || !light[pd.Op.WriteID()] {
			continue
		}
		if bestIdx == -1 || pd.Seq < bestSeq {
			bestIdx, bestSeq = pd.Index, pd.Seq
		}
	}
	if bestIdx >= 0 {
		return dsys.Decision{Kind: dsys.KindApply, PendingIndex: bestIdx}
	}

	// Rule 2: fair scheduling of client actions — grant the run token to the
	// longest-waiting ready client.
	if len(v.Ready) > 0 {
		best := v.Ready[0]
		for _, r := range v.Ready[1:] {
			if r.Ticket < best.Ticket {
				best = r
			}
		}
		return dsys.Decision{Kind: dsys.KindRun, Ticket: best.Ticket}
	}

	// Nothing Ad is willing to schedule: the run is pinned.
	return dsys.Decision{Kind: dsys.KindStall}
}

// Result summarizes one adversarial run against an algorithm.
type Result struct {
	// Algorithm is the register emulation under attack.
	Algorithm string
	// F, K, Concurrency and DataBits are the run parameters.
	F, K, Concurrency, DataBits int
	// EllBits is the adversary's ℓ.
	EllBits int
	// PinnedBaseObjectBits is the base-object storage when the run was
	// pinned (or when it ended, if a write managed to complete).
	PinnedBaseObjectBits int
	// PinnedTotalBits additionally counts client-held and in-flight blocks.
	PinnedTotalBits int
	// LowerBoundBits is the analytic target min(f+1, c) * min(ℓ, D-ℓ).
	LowerBoundBits int
	// FullObjects is |Fℓ| and HeavyWrites is |C⁺ℓ| at the pinned point.
	FullObjects int
	HeavyWrites int
	// CompletedWrites counts writes that returned despite the adversary.
	CompletedWrites int
	// Steps is the number of scheduling decisions taken.
	Steps int
	// Reason is how the run ended (IdleStuck means Ad pinned it).
	Reason dsys.IdleReason
}

// MeetsBound reports whether the pinned storage meets the analytic target.
func (r *Result) MeetsBound() bool { return r.PinnedBaseObjectBits >= r.LowerBoundBits }

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s f=%d k=%d c=%d D=%db ℓ=%db: pinned storage %db (bound %db, |F|=%d, |C+|=%d, completed=%d, %s)",
		r.Algorithm, r.F, r.K, r.Concurrency, r.DataBits, r.EllBits,
		r.PinnedBaseObjectBits, r.LowerBoundBits, r.FullObjects, r.HeavyWrites, r.CompletedWrites, r.Reason)
}

// Run attacks the register emulation with Ad: it invokes concurrency
// concurrent writes of distinct values, schedules the run with Ad using
// ℓ = ellBits (0 means D/2), lets it run until it is pinned or quiesces, and
// reports the storage the adversary extracted.
func Run(reg register.Register, concurrency int, ellBits int) (*Result, error) {
	cfg := reg.Config()
	if concurrency < 1 {
		return nil, fmt.Errorf("adversary: concurrency must be at least 1, got %d", concurrency)
	}
	dBits := cfg.DataBits()
	if ellBits <= 0 {
		ellBits = dBits / 2
	}
	v0 := value.Zero(cfg.DataLen)
	states, err := reg.InitialStates(v0)
	if err != nil {
		return nil, fmt.Errorf("adversary: initial states: %w", err)
	}
	pol := NewPolicy(ellBits)
	maxSteps := 200 * concurrency * cfg.N() // safety net: Ad runs pin themselves long before this
	cluster := dsys.NewCluster(states,
		dsys.WithPolicy(pol),
		dsys.WithDataBits(dBits),
		dsys.WithMaxSteps(maxSteps),
	)
	defer cluster.Close()

	tasks := make([]*dsys.TaskHandle, 0, concurrency)
	for c := 1; c <= concurrency; c++ {
		c := c
		tasks = append(tasks, cluster.Spawn(c, func(h *dsys.ClientHandle) error {
			return reg.Write(h, workload.WriterValue(cfg, c, 1))
		}))
	}
	cluster.Start()
	reason := cluster.WaitIdle()

	snap := cluster.SampleStorage()
	res := &Result{
		Algorithm:            reg.Name(),
		F:                    cfg.F,
		K:                    cfg.K,
		Concurrency:          concurrency,
		DataBits:             dBits,
		EllBits:              ellBits,
		PinnedBaseObjectBits: snap.BaseObjectBits,
		PinnedTotalBits:      snap.TotalBits,
		FullObjects:          len(snap.Full(ellBits)),
		Steps:                cluster.Steps(),
		Reason:               reason,
	}
	outstanding := cluster.OutstandingOps()
	var outstandingWrites []oracle.WriteID
	for _, op := range outstanding {
		if op.Kind == dsys.OpWrite {
			outstandingWrites = append(outstandingWrites, op.WriteID())
		}
	}
	res.HeavyWrites = len(snap.HeavyWrites(outstandingWrites, dBits, ellBits))
	res.CompletedWrites = concurrency - len(outstandingWrites)

	target := concurrency
	if cfg.F+1 < target {
		target = cfg.F + 1
	}
	short := ellBits
	if dBits-ellBits < short {
		short = dBits - ellBits
	}
	res.LowerBoundBits = target * short

	// Release the pinned clients so Close can join them.
	cluster.Close()
	for _, t := range tasks {
		// Errors are expected: pinned writers abort with ErrHalted.
		_ = t.Wait()
	}
	return res, nil
}
