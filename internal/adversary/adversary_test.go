package adversary_test

import (
	"testing"

	"spacebounds/internal/adversary"
	"spacebounds/internal/dsys"
	"spacebounds/internal/oracle"
	"spacebounds/internal/register"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/register/ecreg"
	"spacebounds/internal/register/safereg"
	"spacebounds/internal/storagecost"
)

func TestPolicyRulePriorities(t *testing.T) {
	// D = 1000 bits, ℓ = 500. Write w1 is light (200 bits outside its
	// client), w2 is heavy (600 bits). Object 0 is frozen (600 bits), object
	// 1 is not (100 bits).
	w1 := oracle.WriteID{Client: 1, Seq: 1}
	w2 := oracle.WriteID{Client: 2, Seq: 1}
	snap := storagecost.Collect([]storagecost.Reporter{reporter{
		{Location: storagecost.Location{Kind: storagecost.BaseObject, ID: 0}, Source: oracle.SourceTag{Write: w2, Index: 1}, Bits: 600},
		{Location: storagecost.Location{Kind: storagecost.BaseObject, ID: 1}, Source: oracle.SourceTag{Write: w1, Index: 1}, Bits: 100},
		{Location: storagecost.Location{Kind: storagecost.BaseObject, ID: 2}, Source: oracle.SourceTag{Write: w1, Index: 2}, Bits: 100},
	}}, nil)
	view := &dsys.View{
		DataBits:          1000,
		Storage:           snap,
		OutstandingWrites: []oracle.WriteID{w1, w2},
		Pending: []dsys.PendingView{
			{Index: 0, Seq: 10, Object: 0, Client: 1, Op: dsys.OpID{Client: 1, Seq: 1, Kind: dsys.OpWrite}}, // frozen object
			{Index: 1, Seq: 11, Object: 1, Client: 2, Op: dsys.OpID{Client: 2, Seq: 1, Kind: dsys.OpWrite}}, // heavy write
			{Index: 2, Seq: 12, Object: 1, Client: 1, Op: dsys.OpID{Client: 1, Seq: 1, Kind: dsys.OpWrite}}, // eligible
			{Index: 3, Seq: 13, Object: 2, Client: 1, Op: dsys.OpID{Client: 1, Seq: 1, Kind: dsys.OpWrite}}, // eligible but younger
		},
		Ready: []dsys.ReadyClient{{Ticket: 5, Client: 3}},
	}
	pol := adversary.NewPolicy(500)
	d := pol.Decide(view)
	if d.Kind != dsys.KindApply || d.PendingIndex != 2 {
		t.Fatalf("rule 1 chose %+v, want the longest-pending eligible RMW (index 2)", d)
	}

	// Without eligible pending RMWs, rule 2 runs the lowest-ticket ready client.
	view.Pending = view.Pending[:2]
	d = pol.Decide(view)
	if d.Kind != dsys.KindRun || d.Ticket != 5 {
		t.Fatalf("rule 2 chose %+v, want to run ticket 5", d)
	}

	// With nothing to do, Ad stalls.
	view.Ready = nil
	d = pol.Decide(view)
	if d.Kind != dsys.KindStall {
		t.Fatalf("expected stall, got %+v", d)
	}
}

type reporter []storagecost.BlockInfo

func (r reporter) StorageBlocks() []storagecost.BlockInfo { return r }

func TestAdversaryPinsEcregAndExtractsBound(t *testing.T) {
	// Against the pure erasure-coded baseline the adversary pins the run (no
	// write returns) having driven the storage to at least
	// min(f+1, c) * D/2 bits. f = k = 8 keeps the target above the trivial
	// initial storage n·D/k, so the adversary really has to extract bits.
	reg, err := ecreg.New(register.Config{F: 8, K: 8, DataLen: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{1, 4, 8, 12} {
		res, err := adversary.Run(reg, c, 0)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		if res.Reason != dsys.IdleStuck {
			t.Errorf("c=%d: run ended %v, want stuck (pinned)", c, res.Reason)
		}
		if res.CompletedWrites != 0 {
			t.Errorf("c=%d: %d writes completed under Ad", c, res.CompletedWrites)
		}
		if !res.MeetsBound() {
			t.Errorf("c=%d: pinned storage %d bits below bound %d", c, res.PinnedBaseObjectBits, res.LowerBoundBits)
		}
		if res.String() == "" {
			t.Error("empty result string")
		}
	}
}

func TestAdversaryPinsAdaptive(t *testing.T) {
	// The adaptive algorithm is also subject to the bound (it is a black-box
	// coding algorithm): Ad pins it too, with at least min(f+1, c) * D/2
	// bits in the storage at the pinned point.
	reg, err := adaptive.New(register.Config{F: 8, K: 8, DataLen: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{1, 4, 9} {
		res, err := adversary.Run(reg, c, 0)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		if res.CompletedWrites != 0 {
			t.Errorf("c=%d: %d writes completed under Ad", c, res.CompletedWrites)
		}
		if !res.MeetsBound() {
			t.Errorf("c=%d: pinned storage %d bits below bound %d", c, res.PinnedBaseObjectBits, res.LowerBoundBits)
		}
	}
}

func TestAdversaryCannotBlowUpSafeRegister(t *testing.T) {
	// Appendix E: the safe register stores exactly n·D/k bits no matter what
	// the adversary does (updates overwrite in place), so Ad can starve its
	// writes but cannot extract min(f+1, c)·D/2 bits from it. This is the
	// separation showing the lower bound does not hold for safe semantics.
	reg, err := safereg.New(register.Config{F: 8, K: 8, DataLen: 256})
	if err != nil {
		t.Fatal(err)
	}
	cfg := reg.Config()
	res, err := adversary.Run(reg, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.N() * cfg.DataBits() / cfg.K
	if res.PinnedBaseObjectBits != want {
		t.Fatalf("safe register storage under Ad = %d bits, want exactly %d", res.PinnedBaseObjectBits, want)
	}
	if res.MeetsBound() {
		t.Fatalf("safe register storage %d unexpectedly reached the regular-register bound %d",
			res.PinnedBaseObjectBits, res.LowerBoundBits)
	}
}

func TestRunValidation(t *testing.T) {
	reg, err := ecreg.New(register.Config{F: 1, K: 1, DataLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adversary.Run(reg, 0, 0); err == nil {
		t.Fatal("concurrency 0 accepted")
	}
}
