package gf256

import (
	"math/rand"
	"testing"
)

func TestIdentityMultiplication(t *testing.T) {
	id := Identity(4)
	m := Vandermonde(4, 4)
	prod, err := id.Mul(m)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if prod.At(r, c) != m.At(r, c) {
				t.Fatalf("identity * m differs at (%d,%d)", r, c)
			}
		}
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	rows := [][]byte{{1, 2}, {3, 4}}
	m, err := NewMatrixFromRows(rows)
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected matrix contents: %v", m)
	}
	if _, err := NewMatrixFromRows([][]byte{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := NewMatrixFromRows(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestInvertIdentity(t *testing.T) {
	id := Identity(5)
	inv, err := id.Invert()
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if inv.At(r, c) != want {
				t.Fatalf("identity inverse differs at (%d,%d)", r, c)
			}
		}
	}
}

func TestInvertRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				m.Set(r, c, byte(rng.Intn(256)))
			}
		}
		inv, err := m.Invert()
		if err != nil {
			continue // singular matrices are possible with random entries
		}
		prod, err := m.Mul(inv)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if prod.At(r, c) != want {
					t.Fatalf("trial %d: m * m^-1 != I at (%d,%d)", trial, r, c)
				}
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("Invert of singular matrix returned %v, want ErrSingular", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := NewMatrix(2, 3).Invert(); err == nil {
		t.Fatal("Invert of non-square matrix succeeded")
	}
}

func TestVandermondeSubmatricesInvertible(t *testing.T) {
	// Every k-row subset of a Vandermonde matrix with distinct evaluation
	// points must be invertible; this is the property erasure decoding needs.
	const n, k = 10, 4
	v := Vandermonde(n, k)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		rows := rng.Perm(n)[:k]
		sub := v.SubMatrix(rows)
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("Vandermonde submatrix with rows %v is singular", rows)
		}
	}
}

func TestMulVec(t *testing.T) {
	m := Vandermonde(5, 3)
	in := [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}}
	out, err := m.MulVec(in)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if len(out) != 5 || len(out[0]) != 4 {
		t.Fatalf("MulVec output has shape %dx%d, want 5x4", len(out), len(out[0]))
	}
	// Cross-check one entry against scalar arithmetic.
	for r := 0; r < 5; r++ {
		for col := 0; col < 4; col++ {
			var want byte
			for c := 0; c < 3; c++ {
				want = Add(want, Mul(m.At(r, c), in[c][col]))
			}
			if out[r][col] != want {
				t.Fatalf("MulVec mismatch at (%d,%d): got %#x want %#x", r, col, out[r][col], want)
			}
		}
	}
}

func TestMulVecErrors(t *testing.T) {
	m := Vandermonde(3, 2)
	if _, err := m.MulVec([][]byte{{1}}); err == nil {
		t.Fatal("MulVec accepted wrong number of rows")
	}
	if _, err := m.MulVec([][]byte{{1, 2}, {3}}); err == nil {
		t.Fatal("MulVec accepted ragged rows")
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("Mul accepted incompatible dimensions")
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 1) did not panic")
		}
	}()
	NewMatrix(0, 1)
}

func TestCloneIsIndependent(t *testing.T) {
	m := Vandermonde(3, 3)
	c := m.Clone()
	c.Set(0, 0, 0xEE)
	if m.At(0, 0) == 0xEE {
		t.Fatal("Clone shares storage with original")
	}
	if c.String() == "" {
		t.Fatal("String returned empty output")
	}
}
