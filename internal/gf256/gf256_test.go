package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{1, 1, 0},
		{0x53, 0xca, 0x99},
		{0xff, 0x0f, 0xf0},
	}
	for _, c := range cases {
		if got := Add(c.a, c.b); got != c.want {
			t.Errorf("Add(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
		if got := Sub(c.a, c.b); got != c.want {
			t.Errorf("Sub(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	// Hand-checked products under polynomial 0x11d.
	cases := []struct{ a, b, want byte }{
		{0, 5, 0},
		{5, 0, 0},
		{1, 0xab, 0xab},
		{2, 0x80, 0x1d}, // 0x100 reduced by 0x11d
		{2, 2, 4},
		{4, 4, 16},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	commutative := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("multiplication not commutative: %v", err)
	}
	associative := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(associative, nil); err != nil {
		t.Errorf("multiplication not associative: %v", err)
	}
	distributive := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(distributive, nil); err != nil {
		t.Errorf("multiplication not distributive over addition: %v", err)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for a := 1; a < Order; a++ {
		inv := Inv(byte(a))
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("Mul(%#x, Inv(%#x)) = %#x, want 1", a, a, got)
		}
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	prop := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("Div is not the inverse of Mul: %v", err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestExp(t *testing.T) {
	if got := Exp(0, 0); got != 1 {
		t.Errorf("Exp(0, 0) = %d, want 1", got)
	}
	if got := Exp(0, 5); got != 0 {
		t.Errorf("Exp(0, 5) = %d, want 0", got)
	}
	for _, base := range []byte{1, 2, 3, 0x1d, 0xff} {
		acc := byte(1)
		for n := 0; n < 300; n++ {
			if got := Exp(base, n); got != acc {
				t.Fatalf("Exp(%#x, %d) = %#x, want %#x", base, n, got, acc)
			}
			acc = Mul(acc, base)
		}
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < Order-1; i++ {
		seen[PowGenerator(i)] = true
	}
	if len(seen) != Order-1 {
		t.Fatalf("generator powers cover %d distinct elements, want %d", len(seen), Order-1)
	}
	if seen[0] {
		t.Fatal("generator power produced 0")
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 0x53, 0xff}
	dst := make([]byte, len(src))
	MulSlice(3, dst, src)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Errorf("MulSlice mismatch at %d: got %#x want %#x", i, dst[i], Mul(3, src[i]))
		}
	}
	MulSlice(0, dst, src)
	for i := range dst {
		if dst[i] != 0 {
			t.Errorf("MulSlice by zero left non-zero byte at %d", i)
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5}
	dst := []byte{9, 8, 7, 6, 5}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = Add(dst[i], Mul(7, src[i]))
	}
	MulAddSlice(7, dst, src)
	for i := range dst {
		if dst[i] != want[i] {
			t.Errorf("MulAddSlice mismatch at %d: got %#x want %#x", i, dst[i], want[i])
		}
	}
	// Adding with coefficient zero must be a no-op.
	before := append([]byte(nil), dst...)
	MulAddSlice(0, dst, src)
	for i := range dst {
		if dst[i] != before[i] {
			t.Errorf("MulAddSlice with zero coefficient modified dst at %d", i)
		}
	}
}

func TestAddSlice(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	AddSlice(a, b)
	want := []byte{5, 7, 5}
	for i := range a {
		if a[i] != want[i] {
			t.Errorf("AddSlice mismatch at %d: got %#x want %#x", i, a[i], want[i])
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(1, make([]byte, 2), make([]byte, 3)) },
		"MulAddSlice": func() { MulAddSlice(1, make([]byte, 2), make([]byte, 3)) },
		"AddSlice":    func() { AddSlice(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}
