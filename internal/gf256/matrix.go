package gf256

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when a matrix that must be inverted for decoding is
// singular, which indicates that the supplied rows are linearly dependent.
var ErrSingular = errors.New("gf256: matrix is singular")

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	rows, cols int
	data       []byte
}

// NewMatrix returns a zero matrix with the given dimensions. It panics if
// either dimension is not positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// NewMatrixFromRows builds a matrix from the given rows, which must all have
// the same length. The rows are copied.
func NewMatrixFromRows(rows [][]byte) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("gf256: empty matrix")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("gf256: row %d has %d columns, want %d", i, len(r), m.cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns a rows-by-cols Vandermonde matrix whose entry (r, c) is
// (alpha_r)^c where alpha_r = generator^r. Any cols-by-cols submatrix formed
// from distinct rows is invertible, which is the property erasure decoding
// relies on.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		alpha := PowGenerator(r)
		for c := 0; c < cols; c++ {
			m.Set(r, c, Exp(alpha, c))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at row r, column c.
func (m *Matrix) At(r, c int) byte { return m.data[r*m.cols+c] }

// Set assigns the entry at row r, column c.
func (m *Matrix) Set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// Row returns a mutable view of row r.
func (m *Matrix) Row(r int) []byte { return m.data[r*m.cols : (r+1)*m.cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// SubMatrix returns a new matrix consisting of the listed rows, in order.
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	s := NewMatrix(len(rows), m.cols)
	for i, r := range rows {
		copy(s.Row(i), m.Row(r))
	}
	return s
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("gf256: cannot multiply %dx%d by %dx%d", m.rows, m.cols, other.rows, other.cols)
	}
	out := NewMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			MulAddSlice(a, out.Row(r), other.Row(k))
		}
	}
	return out, nil
}

// MulVec multiplies the matrix by a column vector of per-row byte slices: the
// input has m.cols rows each of width w bytes, and the result has m.rows rows
// of width w. This is the core encode/decode primitive: each output shard is
// a GF(2^8)-linear combination of the input shards.
func (m *Matrix) MulVec(in [][]byte) ([][]byte, error) {
	if len(in) != m.cols {
		return nil, fmt.Errorf("gf256: MulVec input has %d rows, want %d", len(in), m.cols)
	}
	width := len(in[0])
	for i, row := range in {
		if len(row) != width {
			return nil, fmt.Errorf("gf256: MulVec input row %d has width %d, want %d", i, len(row), width)
		}
	}
	out := make([][]byte, m.rows)
	for r := 0; r < m.rows; r++ {
		out[r] = make([]byte, width)
		for c := 0; c < m.cols; c++ {
			MulAddSlice(m.At(r, c), out[r], in[c])
		}
	}
	return out, nil
}

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination. It returns ErrSingular if no inverse exists.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("gf256: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	work := m.Clone()
	out := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot row with a non-zero entry in this column.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(out, pivot, col)
		}
		// Scale the pivot row so the pivot entry becomes 1.
		if p := work.At(col, col); p != 1 {
			inv := Inv(p)
			MulSlice(inv, work.Row(col), work.Row(col))
			MulSlice(inv, out.Row(col), out.Row(col))
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := work.At(r, col)
			if factor == 0 {
				continue
			}
			MulAddSlice(factor, work.Row(r), work.Row(col))
			MulAddSlice(factor, out.Row(r), out.Row(col))
		}
	}
	return out, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for r := 0; r < m.rows; r++ {
		s += fmt.Sprintf("%v\n", m.Row(r))
	}
	return s
}
