// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed as GF(2)[x] modulo the irreducible polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the polynomial conventionally used by
// Reed-Solomon implementations. Addition is XOR; multiplication, division,
// inversion, and exponentiation are implemented with precomputed log and
// exponentiation tables keyed by the generator element 2.
//
// The package is the arithmetic substrate for the erasure codes in
// internal/erasure. It is allocation-free and safe for concurrent use: the
// tables are computed once at package initialization and never mutated.
package gf256

import "fmt"

// Poly is the irreducible polynomial used to construct the field, expressed
// with the x^8 term included (bit 8 set).
const Poly = 0x11d

// Order is the number of elements in the field.
const Order = 256

// generator is a primitive element of the field; successive powers of the
// generator enumerate all non-zero field elements.
const generator = 2

var (
	expTable [2 * Order]byte // expTable[i] = generator^i, doubled to avoid mod in Mul
	logTable [Order]byte     // logTable[x] = i such that generator^i = x, for x != 0
	invTable [Order]byte     // invTable[x] = multiplicative inverse of x, invTable[0] = 0
)

func init() {
	x := 1
	for i := 0; i < Order-1; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	// Extend the exponent table so Mul can index logA+logB (< 510) directly.
	for i := Order - 1; i < 2*Order; i++ {
		expTable[i] = expTable[i-(Order-1)]
	}
	for i := 1; i < Order; i++ {
		invTable[i] = expTable[Order-1-int(logTable[i])]
	}
}

// Add returns the sum of a and b in GF(2^8). Addition and subtraction
// coincide in characteristic-2 fields.
func Add(a, b byte) byte { return a ^ b }

// Sub returns the difference of a and b in GF(2^8); identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns the product of a and b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a divided by b in GF(2^8). It panics if b is zero, mirroring
// integer division semantics.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	diff := int(logTable[a]) - int(logTable[b])
	if diff < 0 {
		diff += Order - 1
	}
	return expTable[diff]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invTable[a]
}

// Exp returns base raised to the power n in GF(2^8). Exp(0, 0) is defined as
// 1 by convention.
func Exp(base byte, n int) byte {
	if n == 0 {
		return 1
	}
	if base == 0 {
		return 0
	}
	logSum := (int(logTable[base]) * n) % (Order - 1)
	if logSum < 0 {
		logSum += Order - 1
	}
	return expTable[logSum]
}

// PowGenerator returns generator^n; it is the canonical way to obtain the
// n-th distinct evaluation point for Vandermonde-style code matrices.
func PowGenerator(n int) byte { return Exp(generator, n) }

// MulSlice multiplies every byte of src by the scalar c and stores the result
// in dst. dst and src must have equal length; MulSlice panics otherwise.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulSlice length mismatch %d != %d", len(dst), len(src)))
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = expTable[logC+int(logTable[s])]
	}
}

// MulAddSlice computes dst[i] ^= c * src[i] for every index. dst and src must
// have equal length; MulAddSlice panics otherwise.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulAddSlice length mismatch %d != %d", len(dst), len(src)))
	}
	if c == 0 {
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s == 0 {
			continue
		}
		dst[i] ^= expTable[logC+int(logTable[s])]
	}
}

// AddSlice computes dst[i] ^= src[i] for every index. dst and src must have
// equal length; AddSlice panics otherwise.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: AddSlice length mismatch %d != %d", len(dst), len(src)))
	}
	for i, s := range src {
		dst[i] ^= s
	}
}
