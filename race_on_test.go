//go:build race

package spacebounds_test

// raceEnabled reports that this binary runs under the race detector, whose
// instrumentation distorts the compute-to-sleep ratio the throughput
// assertions depend on.
const raceEnabled = true
