// adversarytrace replays the Figure 3 scenario of the paper: concurrent
// writers scheduled by the lower-bound adversary Ad (ℓ = D/2). It narrates
// every scheduling decision — which RMWs Ad lets take effect, which clients
// it lets run, and where it finally pins the run — and reports the storage it
// extracted compared with the Ω(min(f, c)·D) target.
package main

import (
	"fmt"
	"log"

	"spacebounds/internal/dsys"
	"spacebounds/internal/experiments"
)

func main() {
	const writers = 4
	events, res, err := experiments.TraceAdversary(writers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversary Ad vs %s with %d concurrent writers (ℓ = D/2 = %d bits)\n\n",
		res.Algorithm, writers, res.EllBits)
	for _, ev := range events {
		switch ev.Kind {
		case dsys.TraceRun:
			fmt.Printf("step %3d: rule 2 — let client %d take local steps (trigger RMWs)\n", ev.Step, ev.Client)
		case dsys.TraceApply:
			fmt.Printf("step %3d: rule 1 — RMW of %v takes effect on base object %d\n", ev.Step, ev.Op, ev.Object)
		case dsys.TraceStall:
			fmt.Printf("step %3d: Ad refuses to schedule anything — the run is pinned\n", ev.Step)
		case dsys.TraceCrash:
			fmt.Printf("step %3d: base object %d crashes\n", ev.Step, ev.Object)
		}
	}
	fmt.Printf("\npinned after %d steps (%v)\n", res.Steps, res.Reason)
	fmt.Printf("base-object storage at the pinned point: %d bits\n", res.PinnedBaseObjectBits)
	fmt.Printf("Theorem 1 target min(f+1, c)·D/2:        %d bits\n", res.LowerBoundBits)
	fmt.Printf("objects holding ≥ ℓ bits (frozen, F):     %d\n", res.FullObjects)
	fmt.Printf("writes with > D-ℓ bits in storage (C+):   %d\n", res.HeavyWrites)
	if res.PinnedBaseObjectBits >= res.LowerBoundBits {
		fmt.Println("\nthe adversary extracted at least the lower-bound storage, as Theorem 1 predicts")
	}
}
