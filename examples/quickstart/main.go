// Quickstart: emulate a fault-tolerant register over 2f+k simulated storage
// nodes with the paper's adaptive algorithm, write a value, crash f nodes,
// and read the value back.
package main

import (
	"fmt"
	"log"
	"strings"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/value"
)

func main() {
	// f = 1 failure tolerated, k = 2 erasure-code threshold => n = 4 nodes,
	// 64-byte values.
	cfg := register.Config{F: 1, K: 2, DataLen: 64}
	reg, err := adaptive.New(cfg)
	if err != nil {
		log.Fatalf("building register: %v", err)
	}
	states, err := reg.InitialStates(value.Zero(cfg.DataLen))
	if err != nil {
		log.Fatalf("initial states: %v", err)
	}
	cluster := dsys.NewCluster(states, dsys.WithLiveMode(), dsys.WithDataBits(cfg.DataBits()))
	defer cluster.Close()
	fmt.Printf("started %s over %d base objects (quorum %d)\n", reg.Name(), cfg.N(), cfg.Quorum())

	// Client 1 writes.
	msg := "erasure codes meet replication"
	write := cluster.Spawn(1, func(h *dsys.ClientHandle) error {
		return reg.Write(h, value.FromString(msg, cfg.DataLen))
	})
	if err := write.Wait(); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("client 1 wrote %q\n", msg)
	fmt.Printf("storage after write: %v\n", cluster.SampleStorage())

	// Crash one base object — the register tolerates f = 1 such failures.
	if err := cluster.CrashObject(0); err != nil {
		log.Fatalf("crash: %v", err)
	}
	fmt.Println("crashed base object 0")

	// Client 2 reads despite the failure.
	var got value.Value
	read := cluster.Spawn(2, func(h *dsys.ClientHandle) error {
		var err error
		got, err = reg.Read(h)
		return err
	})
	if err := read.Wait(); err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("client 2 read  %q\n", strings.TrimRight(string(got.Bytes()), "\x00"))
}
