// Quickstart: open a fault-tolerant register store over 2f+k simulated
// storage nodes with the paper's adaptive algorithm, write a value, crash f
// nodes, and read the value back — all through the public spacebounds facade.
package main

import (
	"fmt"
	"log"
	"strings"

	"spacebounds"
)

func main() {
	// f = 1 failure tolerated, k = 2 erasure-code threshold => n = 4 nodes,
	// 64-byte values.
	store, err := spacebounds.Open(spacebounds.Options{
		Algorithm: spacebounds.Adaptive,
		F:         1,
		K:         2,
		ValueSize: 64,
	})
	if err != nil {
		log.Fatalf("opening store: %v", err)
	}
	defer store.Close()
	fmt.Printf("started %s over %d base objects\n", store.Algorithm(), store.Nodes())

	// Client 1 writes. Keys route to shards; with a single shard every key
	// addresses the same register, and "default" is that shard's name.
	msg := "erasure codes meet replication"
	if err := store.WriteKey(1, "default", []byte(msg)); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("client 1 wrote %q\n", msg)
	fmt.Printf("storage after write: %v\n", store.StorageSnapshot())

	// Crash one base object — the register tolerates f = 1 such failures.
	if err := store.CrashNode(0); err != nil {
		log.Fatalf("crash: %v", err)
	}
	fmt.Println("crashed base object 0")

	// Client 2 reads despite the failure.
	got, err := store.ReadKey(2, "default")
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("client 2 read  %q\n", strings.TrimRight(string(got), "\x00"))
}
