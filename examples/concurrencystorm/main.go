// concurrencystorm reproduces the scenario the paper's introduction opens
// with: many clients write to the same register concurrently, and the choice
// of redundancy scheme determines the storage bill.
//
// The program sweeps the number of concurrent writers and prints the peak
// storage of the three schemes side by side: ABD replication (flat at
// (2f+1)·D), a pure erasure-coded register (grows linearly with c), and the
// paper's adaptive algorithm (follows the coded line, then plateaus).
package main

import (
	"flag"
	"fmt"
	"log"

	"spacebounds/internal/register"
	"spacebounds/internal/register/abd"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/register/ecreg"
	"spacebounds/internal/workload"
)

func main() {
	var (
		maxWriters = flag.Int("max-writers", 16, "largest concurrency level in the sweep (CI uses a tiny budget)")
		writes     = flag.Int("writes", 2, "writes per writer")
		dataLen    = flag.Int("valuesize", 1024, "value size in bytes")
	)
	flag.Parse()
	const f = 2
	fmt.Printf("peak storage (KiB) while c clients write %d-byte values concurrently, f = %d\n\n", *dataLen, f)
	fmt.Printf("%4s  %12s  %12s  %12s\n", "c", "replication", "pure coding", "adaptive")

	for _, c := range []int{1, 2, 4, 6, 8, 12, 16} {
		if c > *maxWriters {
			break
		}
		replication, err := abd.New(register.Config{F: f, K: 1, DataLen: *dataLen})
		if err != nil {
			log.Fatal(err)
		}
		coded, err := ecreg.New(register.Config{F: f, K: f, DataLen: *dataLen})
		if err != nil {
			log.Fatal(err)
		}
		adapt, err := adaptive.New(register.Config{F: f, K: f, DataLen: *dataLen})
		if err != nil {
			log.Fatal(err)
		}
		spec := workload.Spec{Writers: c, WritesPerWriter: *writes}
		rRes, err := workload.Run(replication, spec)
		if err != nil {
			log.Fatal(err)
		}
		cRes, err := workload.Run(coded, spec)
		if err != nil {
			log.Fatal(err)
		}
		aRes, err := workload.Run(adapt, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %12.2f  %12.2f  %12.2f\n", c,
			kib(rRes.MaxBaseObjectBits), kib(cRes.MaxBaseObjectBits), kib(aRes.MaxBaseObjectBits))
	}
	fmt.Println("\nreplication pays O(f·D) always; pure coding pays O(c·D) under concurrency;")
	fmt.Println("the adaptive algorithm pays O(min(f, c)·D) — the optimum established by the paper.")
}

func kib(bits int) float64 { return float64(bits) / 8192 }
