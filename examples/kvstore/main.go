// kvstore builds a tiny fault-tolerant key-value store on the facade's real
// sharded API: one Store multiplexes four named register shards over a single
// shared simulated cluster, keys route to shards by name, several clients
// update and read keys concurrently, one storage node per shard is crashed
// midway (within each shard's f = 1 budget), and the program prints the final
// contents together with the per-shard and total storage cost.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"spacebounds"
)

func main() {
	keys := []string{"alpha", "beta", "gamma", "delta"}
	shards := make([]spacebounds.ShardSpec, 0, len(keys))
	for _, key := range keys {
		shards = append(shards, spacebounds.ShardSpec{Name: key})
	}
	store, err := spacebounds.Open(spacebounds.Options{
		F:         1,
		K:         2,
		ValueSize: 128,
		Shards:    shards,
	})
	if err != nil {
		log.Fatalf("opening store: %v", err)
	}
	defer store.Close()
	fmt.Printf("opened %d shards over %d shared base objects\n", len(store.Shards()), store.Nodes())

	// Phase 1: several clients write to all keys concurrently. Clients on
	// different keys proceed in parallel — the shards share no locks.
	var wg sync.WaitGroup
	for client := 1; client <= 3; client++ {
		client := client
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, key := range keys {
				val := fmt.Sprintf("%s=v%d-by-client-%d", key, client, client)
				if err := store.WriteKey(client, key, []byte(val)); err != nil {
					log.Printf("put %s by %d: %v", key, client, err)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Println("three clients wrote every key concurrently")

	// Phase 2: crash one storage node per shard — within the f=1 budget.
	for _, key := range keys {
		if err := store.CrashShardNode(key, 0); err != nil {
			log.Fatalf("crash node for %s: %v", key, err)
		}
	}
	fmt.Println("crashed one storage node per shard")

	// Phase 3: a fourth client reads everything back.
	fmt.Println("\nfinal contents:")
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	perShard := store.PerShardStorageBits()
	total := 0
	for _, key := range sorted {
		raw, err := store.ReadKey(9, key)
		if err != nil {
			log.Fatalf("get %s: %v", key, err)
		}
		val := strings.TrimRight(string(raw), "\x00")
		fmt.Printf("  %-6s -> %-24q  (shard storage: %d bits)\n", key, val, perShard[key])
		total += perShard[key]
	}
	fmt.Printf("\ntotal base-object storage: %d bits\n", total)
}
