// kvstore builds a tiny fault-tolerant key-value store on top of the adaptive
// register emulation: each key is backed by its own register over its own set
// of simulated base objects. Several clients update and read keys
// concurrently, one storage node per key is crashed midway, and the program
// prints the final contents together with the storage cost per key.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/value"
)

// kvEntry is one key's register and cluster.
type kvEntry struct {
	reg     *adaptive.Register
	cluster *dsys.Cluster
}

// kvStore maps keys to independent register emulations.
type kvStore struct {
	cfg     register.Config
	mu      sync.Mutex
	entries map[string]*kvEntry
}

func newKVStore(cfg register.Config) *kvStore {
	return &kvStore{cfg: cfg, entries: make(map[string]*kvEntry)}
}

// entry returns (creating on demand) the register backing a key.
func (s *kvStore) entry(key string) (*kvEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		return e, nil
	}
	reg, err := adaptive.New(s.cfg)
	if err != nil {
		return nil, err
	}
	states, err := reg.InitialStates(value.Zero(s.cfg.DataLen))
	if err != nil {
		return nil, err
	}
	cluster := dsys.NewCluster(states, dsys.WithLiveMode(), dsys.WithDataBits(s.cfg.DataBits()))
	e := &kvEntry{reg: reg, cluster: cluster}
	s.entries[key] = e
	return e, nil
}

// Put writes a value under a key on behalf of a client.
func (s *kvStore) Put(client int, key, val string) error {
	e, err := s.entry(key)
	if err != nil {
		return err
	}
	return e.cluster.Spawn(client, func(h *dsys.ClientHandle) error {
		return e.reg.Write(h, value.FromString(val, s.cfg.DataLen))
	}).Wait()
}

// Get reads the value under a key on behalf of a client.
func (s *kvStore) Get(client int, key string) (string, error) {
	e, err := s.entry(key)
	if err != nil {
		return "", err
	}
	var got value.Value
	if err := e.cluster.Spawn(client, func(h *dsys.ClientHandle) error {
		var err error
		got, err = e.reg.Read(h)
		return err
	}).Wait(); err != nil {
		return "", err
	}
	return strings.TrimRight(string(got.Bytes()), "\x00"), nil
}

// CrashNode crashes one base object of the register backing a key.
func (s *kvStore) CrashNode(key string, node int) error {
	e, err := s.entry(key)
	if err != nil {
		return err
	}
	return e.cluster.CrashObject(node)
}

// Close shuts down every per-key cluster.
func (s *kvStore) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		e.cluster.Close()
	}
}

func main() {
	store := newKVStore(register.Config{F: 1, K: 2, DataLen: 128})
	defer store.Close()

	keys := []string{"alpha", "beta", "gamma", "delta"}

	// Phase 1: several clients write to all keys concurrently.
	var wg sync.WaitGroup
	for client := 1; client <= 3; client++ {
		client := client
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, key := range keys {
				val := fmt.Sprintf("%s=v%d-by-client-%d", key, client, client)
				if err := store.Put(client, key, val); err != nil {
					log.Printf("put %s by %d: %v", key, client, err)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Println("three clients wrote every key concurrently")

	// Phase 2: crash one storage node per key — within the f=1 budget.
	for i, key := range keys {
		if err := store.CrashNode(key, i%4); err != nil {
			log.Fatalf("crash node for %s: %v", key, err)
		}
	}
	fmt.Println("crashed one storage node per key")

	// Phase 3: a fourth client reads everything back.
	fmt.Println("\nfinal contents:")
	sort.Strings(keys)
	for _, key := range keys {
		val, err := store.Get(9, key)
		if err != nil {
			log.Fatalf("get %s: %v", key, err)
		}
		snap := store.entries[key].cluster.SampleStorage()
		fmt.Printf("  %-6s -> %-24q  (base-object storage: %d bits)\n", key, val, snap.BaseObjectBits)
	}
}
