//go:build !race

package spacebounds_test

// raceEnabled is false in regular builds; see race_on_test.go.
const raceEnabled = false
