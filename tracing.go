package spacebounds

import "spacebounds/internal/trace"

// Tracer is the store's per-operation flight recorder: sampled operations
// record fixed-shape spans for every stage they pass through — the facade op,
// batcher group-commit wait, quorum round, per-node RPC, node-side apply, and
// write-ahead-log append/fsync — into a bounded lock-free ring. The dump
// (Handler on the operational HTTP port, or Dump programmatically) carries
// whole-trace slow-op captures and the slowest trace per latency family, so a
// tail-latency spike links straight from a histogram to the op that caused
// it. A nil *Tracer is the disabled tracer: every method no-ops and the
// per-operation cost is one branch. See docs/TRACING.md.
type Tracer = trace.Tracer

// TraceOptions configure a Tracer: sampling probability, the slow-op
// threshold, ring capacity, and the process/node identity stamped on every
// span.
type TraceOptions = trace.Options

// NewTracer creates a tracer to pass in Options.Trace (and to transport
// clients and servers via their tracing options, where applicable).
func NewTracer(o TraceOptions) *Tracer { return trace.New(o) }
