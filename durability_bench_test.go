// Recovery benchmark: how long a durable store takes to come back as its
// write-ahead log grows. Part of the gated set (BENCH_GATE) so a regression
// in replay cost fails bench-check like a throughput regression would.
package spacebounds_test

import (
	"fmt"
	"testing"

	"spacebounds"
)

// BenchmarkWALRecovery measures Open on a directory seeded with a log of the
// given size: journal scan, CRC checks, and RMW re-application into a fresh
// cluster. SnapshotEvery is set far above the seeded sizes so every iteration
// replays the full log — the worst case a snapshot would otherwise truncate.
func BenchmarkWALRecovery(b *testing.B) {
	for _, writes := range []int{64, 512} {
		b.Run(fmt.Sprintf("writes=%d", writes), func(b *testing.B) {
			dir := b.TempDir()
			opts := spacebounds.Options{
				ValueSize: 64,
				Durability: spacebounds.Durability{
					Dir:           dir,
					SyncEvery:     256,     // seeding speed; durability is not under test
					SnapshotEvery: 1 << 30, // never: keep the whole log for replay
				},
			}
			s, err := spacebounds.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			val := []byte("recovery-benchmark-value")
			for i := 0; i < writes; i++ {
				if err := s.WriteKey(1, "default", val); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := spacebounds.Open(opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
