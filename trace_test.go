package spacebounds_test

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"spacebounds"
	"spacebounds/internal/trace"
)

// TestStoreTracing opens a fully traced store — batching, durability, and
// metrics all on — runs a keyed workload plus a live split, and asserts the
// flight recorder holds complete operation trees: every sampled op roots a
// trace whose children cover batch wait, the quorum round, and the WAL
// append, and the split contributes per-step reconfiguration spans. It then
// round-trips the dump through the HTTP handler to pin the /debug/trace wire
// format the tools (spacebench -trace-peers, the e2e tests) consume.
func TestStoreTracing(t *testing.T) {
	reg := spacebounds.NewMetrics()
	tr := spacebounds.NewTracer(spacebounds.TraceOptions{
		Sample:  1,
		Slow:    time.Nanosecond, // everything is a slow op: exercises retention
		Proc:    "test",
		Node:    -1,
		Metrics: reg,
	})
	store, err := spacebounds.Open(spacebounds.Options{
		ValueSize:  64,
		Shards:     []spacebounds.ShardSpec{{Name: "a"}, {Name: "b"}},
		Batch:      spacebounds.BatchOptions{MaxSize: 4},
		Durability: spacebounds.Durability{Dir: t.TempDir()},
		Metrics:    reg,
		Trace:      tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Tracer() != tr {
		t.Fatal("Store.Tracer() does not return the tracer passed in Options.Trace")
	}

	const writes = 8
	for i := 0; i < writes; i++ {
		if err := store.WriteKey(1, "a", []byte("traced")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := store.ReadKey(2, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SplitShard("b"); err != nil {
		t.Fatal(err)
	}

	d := tr.Dump()
	if d.Proc != "test" || d.Node != -1 || d.Sample != 1 {
		t.Fatalf("dump header = %q/%d/%v, want test/-1/1", d.Proc, d.Node, d.Sample)
	}

	// Every stage an in-process durable store passes through must appear.
	// (StageRPC and StageApply are transport stages; the e2e cluster test
	// covers those.)
	stages := make(map[string]int)
	for _, s := range d.Spans {
		stages[s.Stage]++
	}
	for _, want := range []string{
		trace.StageOp, trace.StageBatchWait, trace.StageRound,
		trace.StageWALAppend, trace.StageReconfig,
	} {
		if stages[want] == 0 {
			t.Errorf("no %s spans in dump (stage counts: %v)", want, stages)
		}
	}

	// Assembly yields rooted trees: at least the write/read ops, each with a
	// quorum round attributable to the root (directly or via the batcher).
	asm := trace.Assemble(d.Spans)
	rooted := 0
	for _, a := range asm {
		if a.Root.ID == 0 {
			continue
		}
		rooted++
		ids := map[uint64]bool{a.Root.ID: true}
		for _, s := range a.Spans {
			ids[s.ID] = true
		}
		round := false
		for _, s := range a.Spans {
			if !ids[s.Parent] && s.Parent != 0 {
				t.Errorf("trace %016x: span %016x (%s) has dangling parent %016x",
					a.Trace, s.ID, s.Stage, s.Parent)
			}
			if s.Stage == trace.StageRound {
				round = true
			}
		}
		if !round {
			t.Errorf("trace %016x (%s) has no quorum-round span", a.Trace, a.Root.Note)
		}
	}
	if rooted < writes {
		t.Errorf("assembled %d rooted traces, want at least %d", rooted, writes)
	}

	// Slow-op retention and exemplar linkage: with a 1ns threshold every op
	// qualifies, and the quorum-round family must link to a sampled trace.
	if len(d.SlowTraces) == 0 {
		t.Error("Slow threshold set but no slow traces retained")
	}
	ex, ok := d.Exemplars["spacebounds_dsys_quorum_round_seconds"]
	if !ok {
		t.Errorf("no quorum-round exemplar (families: %v)", keysOf(d.Exemplars))
	} else if ex.Trace == 0 || ex.Seconds < 0 {
		t.Errorf("quorum-round exemplar = %+v, want a trace link", ex)
	}

	// The handler serves the same dump over HTTP, and ParseDump reads it back.
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	parsed, err := trace.ParseDump(body)
	if err != nil {
		t.Fatalf("ParseDump: %v", err)
	}
	if parsed.Proc != "test" || len(parsed.Spans) == 0 {
		t.Fatalf("parsed dump = proc %q, %d spans; want test with spans", parsed.Proc, len(parsed.Spans))
	}

	// The tracer's own meters counted the work.
	if got := counterValue(t, reg, "spacebounds_trace_spans_total"); got == 0 {
		t.Error("spacebounds_trace_spans_total = 0 after a traced workload")
	}
	if got := counterValue(t, reg, "spacebounds_trace_sampled_traces_total"); got < writes {
		t.Errorf("spacebounds_trace_sampled_traces_total = %d, want at least %d", got, writes)
	}
}

// counterValue reads an unlabeled counter's value off the registry's
// Prometheus rendering.
func counterValue(t *testing.T, reg *spacebounds.Metrics, name string) int64 {
	t.Helper()
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimPrefix(line, name+" "), 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("registry exposition has no %s series", name)
	return 0
}

func keysOf(m map[string]trace.Exemplar) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
