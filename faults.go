package spacebounds

import (
	"math/rand"
	"sync"
	"time"
)

// FaultOptions configures opt-in live-mode fault injection: a background
// injector periodically crashes random storage nodes — never more than each
// shard's fault tolerance F at a time, mirroring the model's bound of f
// crashed base objects per register — and, when Downtime is set, restarts
// them after the given outage (fail-recover churn). The zero value disables
// injection.
//
// Fault injection is how a live store rehearses the schedules the
// deterministic simulator (internal/sim) explores exhaustively in controlled
// mode: the simulator proves the algorithms tolerate adversarial fault
// schedules; the injector checks the live engine — batching, queueing,
// storage accounting — under the same kind of churn.
type FaultOptions struct {
	// Interval is the mean time between fault-injection attempts; zero
	// disables the injector.
	Interval time.Duration
	// Downtime is how long a crashed node stays down before it is restarted.
	// Zero means crashed nodes stay down for the life of the store.
	Downtime time.Duration
	// Seed makes the injected fault sequence reproducible (0 = seed 1).
	Seed int64
}

// enabled reports whether the injector should run.
func (f FaultOptions) enabled() bool { return f.Interval > 0 }

// FaultStats counts injected faults.
type FaultStats struct {
	// Crashes is the number of node crashes injected.
	Crashes int
	// Restarts is the number of crashed nodes brought back.
	Restarts int
	// FailedRestarts is the number of restart attempts that errored. A failed
	// restart does not release the node's crash budget: the node is still
	// down, so freeing its slot would let a later crash push the shard past F
	// and break its quorums. The injector retries after another Downtime, so
	// one stuck node can count several failed attempts.
	FailedRestarts int
	// RetiredOutages is the number of outages released because a
	// reconfiguration retired the node's region mid-outage (the node is gone
	// with the region, so its budget is released without a restart).
	// Crashes == Restarts + RetiredOutages + (nodes currently down), so a
	// store whose counters drift apart is observable instead of silently
	// losing restarts.
	RetiredOutages int
}

// outage is one injected crash that has not been released yet.
type outage struct {
	since time.Time
	node  int // global object ID
	shard string
}

// injectorState is the injection loop's working state, kept outside the
// goroutine so the tick logic is unit-testable against crafted topologies.
type injectorState struct {
	rng    *rand.Rand
	down   []outage
	downIn map[string]int // shard name -> nodes currently down
}

func newInjectorState(seed int64) *injectorState {
	if seed == 0 {
		seed = 1
	}
	return &injectorState{
		rng:    rand.New(rand.NewSource(seed)),
		downIn: make(map[string]int),
	}
}

func (st *injectorState) isDown(node int) bool {
	for _, o := range st.down {
		if o.node == node {
			return true
		}
	}
	return false
}

// faultInjector is the store's background fault process.
type faultInjector struct {
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// restartHook, when non-nil, replaces the cluster restart call. Tests
	// inject restart failures that are not caused by region retirement to pin
	// the crash-budget accounting.
	restartHook func(node int) error

	mu    sync.Mutex
	stats FaultStats
}

// Stats returns a copy of the counters.
func (fi *faultInjector) Stats() FaultStats {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.stats
}

// restart brings one node back, via the test hook when one is installed.
func (fi *faultInjector) restart(s *Store, node int) error {
	if fi.restartHook != nil {
		return fi.restartHook(node)
	}
	return s.set.Cluster().RestartObject(node)
}

// tick runs one injection step: release outages whose region was retired,
// restart nodes whose downtime elapsed, rebuild the per-shard budget, and
// attempt one crash. The shard list is re-read every tick so the injector
// follows reconfiguration (new regions become targets, retired regions stop
// being hit).
func (fi *faultInjector) tick(s *Store, st *injectorState, now time.Time, opts FaultOptions) {
	shards := s.set.Shards()
	live := make(map[string]bool, len(shards))
	for _, sh := range shards {
		live[sh.Name] = true
	}

	// A retired region takes its nodes with it: outages whose shard left the
	// table are released without a restart, and their budget goes with the
	// region. This is also what keeps downIn from accumulating entries for
	// retired names under churn — the budget map is rebuilt below from the
	// outages that remain, all of which name live shards.
	kept := st.down[:0]
	for _, o := range st.down {
		if !live[o.shard] {
			fi.mu.Lock()
			fi.stats.RetiredOutages++
			fi.mu.Unlock()
			continue
		}
		kept = append(kept, o)
	}
	st.down = kept

	// Restart nodes whose downtime has elapsed. A failed restart of a node
	// whose region is still live keeps the outage (and its crash budget):
	// the node is still down, so releasing the slot would let the injector
	// exceed F and break the shard's quorums. The attempt is retried after
	// another Downtime.
	if opts.Downtime > 0 {
		kept = st.down[:0]
		for i := range st.down {
			o := st.down[i]
			if now.Sub(o.since) < opts.Downtime {
				kept = append(kept, o)
				continue
			}
			err := fi.restart(s, o.node)
			fi.mu.Lock()
			if err == nil {
				fi.stats.Restarts++
			} else {
				fi.stats.FailedRestarts++
			}
			fi.mu.Unlock()
			if err == nil {
				continue
			}
			o.since = now
			kept = append(kept, o)
		}
		st.down = kept
	}

	// downIn is derived state — outages grouped by shard. Rebuilding it from
	// the surviving outages keeps it exact through retirements and failed
	// restarts alike.
	for name := range st.downIn {
		delete(st.downIn, name)
	}
	for _, o := range st.down {
		st.downIn[o.shard]++
	}

	// One crash attempt: a random node of a random shard, only if the shard
	// still has crash budget (down < F). Mid-reconfiguration the table can
	// transiently expose no routable shard; skip the tick rather than index
	// into an empty list.
	if len(shards) == 0 {
		return
	}
	sh := shards[st.rng.Intn(len(shards))]
	if st.downIn[sh.Name] >= sh.Reg.Config().F {
		return
	}
	node := sh.Base + st.rng.Intn(sh.Span)
	if st.isDown(node) {
		return
	}
	if err := s.set.Cluster().CrashObject(node); err != nil {
		return
	}
	st.down = append(st.down, outage{since: now, node: node, shard: sh.Name})
	st.downIn[sh.Name]++
	fi.mu.Lock()
	fi.stats.Crashes++
	fi.mu.Unlock()
}

// start launches the injection loop against the store's shard set.
func (fi *faultInjector) start(s *Store, opts FaultOptions) {
	fi.stop = make(chan struct{})
	fi.wg.Add(1)
	go func() {
		defer fi.wg.Done()
		st := newInjectorState(opts.Seed)
		ticker := time.NewTicker(opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-fi.stop:
				return
			case now := <-ticker.C:
				fi.tick(s, st, now, opts)
			}
		}
	}()
}

// halt stops the injection loop and waits for it. It is idempotent, like
// Store.Close.
func (fi *faultInjector) halt() {
	if fi.stop == nil {
		return
	}
	fi.stopOnce.Do(func() { close(fi.stop) })
	fi.wg.Wait()
}
