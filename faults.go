package spacebounds

import (
	"math/rand"
	"sync"
	"time"
)

// FaultOptions configures opt-in live-mode fault injection: a background
// injector periodically crashes random storage nodes — never more than each
// shard's fault tolerance F at a time, mirroring the model's bound of f
// crashed base objects per register — and, when Downtime is set, restarts
// them after the given outage (fail-recover churn). The zero value disables
// injection.
//
// Fault injection is how a live store rehearses the schedules the
// deterministic simulator (internal/sim) explores exhaustively in controlled
// mode: the simulator proves the algorithms tolerate adversarial fault
// schedules; the injector checks the live engine — batching, queueing,
// storage accounting — under the same kind of churn.
type FaultOptions struct {
	// Interval is the mean time between fault-injection attempts; zero
	// disables the injector.
	Interval time.Duration
	// Downtime is how long a crashed node stays down before it is restarted.
	// Zero means crashed nodes stay down for the life of the store.
	Downtime time.Duration
	// Seed makes the injected fault sequence reproducible (0 = seed 1).
	Seed int64
}

// enabled reports whether the injector should run.
func (f FaultOptions) enabled() bool { return f.Interval > 0 }

// FaultStats counts injected faults.
type FaultStats struct {
	// Crashes is the number of node crashes injected.
	Crashes int
	// Restarts is the number of crashed nodes brought back.
	Restarts int
	// FailedRestarts is the number of restart attempts that errored — most
	// commonly because a reconfiguration retired the node's region during its
	// outage. Crashes == Restarts + FailedRestarts + (nodes currently down),
	// so a store whose counters drift apart is observable instead of silently
	// losing restarts.
	FailedRestarts int
}

// faultInjector is the store's background fault process.
type faultInjector struct {
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu    sync.Mutex
	stats FaultStats
}

// Stats returns a copy of the counters.
func (fi *faultInjector) Stats() FaultStats {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.stats
}

// start launches the injection loop against the store's shard set.
func (fi *faultInjector) start(s *Store, opts FaultOptions) {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	fi.stop = make(chan struct{})
	fi.wg.Add(1)
	go func() {
		defer fi.wg.Done()
		rng := rand.New(rand.NewSource(seed))
		type outage struct {
			since time.Time
			node  int // global object ID
			shard string
		}
		var down []outage
		downIn := make(map[string]int) // shard name -> nodes currently down
		isDown := func(node int) bool {
			for _, o := range down {
				if o.node == node {
					return true
				}
			}
			return false
		}
		ticker := time.NewTicker(opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-fi.stop:
				return
			case now := <-ticker.C:
				// Restart nodes whose downtime has elapsed. A node whose shard
				// was retired by a reconfiguration in the meantime cannot be
				// restarted; its outage is dropped with the region, but the
				// failed attempt is counted so the Crashes/Restarts gap stays
				// explainable from the stats alone.
				if opts.Downtime > 0 {
					kept := down[:0]
					for _, o := range down {
						if now.Sub(o.since) >= opts.Downtime {
							downIn[o.shard]--
							fi.mu.Lock()
							if s.set.Cluster().RestartObject(o.node) == nil {
								fi.stats.Restarts++
							} else {
								fi.stats.FailedRestarts++
							}
							fi.mu.Unlock()
							continue
						}
						kept = append(kept, o)
					}
					down = kept
				}
				// One crash attempt: a random node of a random shard, only if
				// the shard still has crash budget (down < F). The shard list
				// is re-read every tick so the injector follows reconfiguration
				// (new regions become targets, retired regions stop being hit).
				shards := s.set.Shards()
				sh := shards[rng.Intn(len(shards))]
				if downIn[sh.Name] >= sh.Reg.Config().F {
					continue
				}
				node := sh.Base + rng.Intn(sh.Span)
				if isDown(node) {
					continue
				}
				if err := s.set.Cluster().CrashObject(node); err != nil {
					continue
				}
				down = append(down, outage{since: now, node: node, shard: sh.Name})
				downIn[sh.Name]++
				fi.mu.Lock()
				fi.stats.Crashes++
				fi.mu.Unlock()
			}
		}
	}()
}

// halt stops the injection loop and waits for it. It is idempotent, like
// Store.Close.
func (fi *faultInjector) halt() {
	if fi.stop == nil {
		return
	}
	fi.stopOnce.Do(func() { close(fi.stop) })
	fi.wg.Wait()
}
