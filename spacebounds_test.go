package spacebounds

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestStoreDefaults(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Nodes() != 3 || s.FaultTolerance() != 1 || s.ValueSize() != 1024 {
		t.Fatalf("defaults wrong: n=%d f=%d size=%d", s.Nodes(), s.FaultTolerance(), s.ValueSize())
	}
	if s.Algorithm() == "" {
		t.Fatal("empty algorithm name")
	}
}

func TestStoreWriteReadCrash(t *testing.T) {
	for _, algo := range []Algorithm{Adaptive, Replication, ErasureCoded, Safe} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			s, err := Open(Options{Algorithm: algo, F: 1, K: 2, ValueSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			want := []byte("the quick brown fox")
			if err := s.Write(1, want); err != nil {
				t.Fatalf("write: %v", err)
			}
			if err := s.CrashNode(0); err != nil {
				t.Fatalf("crash: %v", err)
			}
			got, err := s.Read(2)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if !bytes.Equal(got[:len(want)], want) {
				t.Fatalf("read %q, want prefix %q", got, want)
			}
			if s.StorageBits() <= 0 {
				t.Fatal("storage accounting returned nothing")
			}
			if s.StorageSnapshot().BaseObjectBits != s.StorageBits() {
				t.Fatal("snapshot and StorageBits disagree")
			}
		})
	}
}

func TestStoreRejectsOversizedValue(t *testing.T) {
	s, err := Open(Options{ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Write(1, make([]byte, 9)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestStoreUnknownAlgorithm(t *testing.T) {
	if _, err := Open(Options{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestStoreConcurrentClients(t *testing.T) {
	s, err := Open(Options{Algorithm: Adaptive, F: 2, K: 2, ValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for client := 1; client <= 6; client++ {
		client := client
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if err := s.Write(client, []byte(fmt.Sprintf("client-%d-gen-%d", client, i))); err != nil {
					t.Errorf("client %d write: %v", client, err)
					return
				}
				if _, err := s.Read(client); err != nil {
					t.Errorf("client %d read: %v", client, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// After quiescence the adaptive register stores one piece per node.
	cfgWant := s.Nodes() * 8 * (128 / 2)
	if got := s.StorageBits(); got != cfgWant {
		t.Fatalf("quiescent storage = %d bits, want %d", got, cfgWant)
	}
}
