package spacebounds

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestStoreDefaults(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Nodes() != 3 || s.FaultTolerance() != 1 || s.ValueSize() != 1024 {
		t.Fatalf("defaults wrong: n=%d f=%d size=%d", s.Nodes(), s.FaultTolerance(), s.ValueSize())
	}
	if s.Algorithm() == "" {
		t.Fatal("empty algorithm name")
	}
}

func TestStoreWriteReadCrash(t *testing.T) {
	for _, algo := range []Algorithm{Adaptive, Replication, ErasureCoded, Safe} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			s, err := Open(Options{Algorithm: algo, F: 1, K: 2, ValueSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			want := []byte("the quick brown fox")
			if err := s.WriteKey(1, "default", want); err != nil {
				t.Fatalf("write: %v", err)
			}
			if err := s.CrashNode(0); err != nil {
				t.Fatalf("crash: %v", err)
			}
			got, err := s.ReadKey(2, "default")
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if !bytes.Equal(got[:len(want)], want) {
				t.Fatalf("read %q, want prefix %q", got, want)
			}
			if s.StorageBits() <= 0 {
				t.Fatal("storage accounting returned nothing")
			}
			if s.StorageSnapshot().BaseObjectBits != s.StorageBits() {
				t.Fatal("snapshot and StorageBits disagree")
			}
		})
	}
}

func TestStoreRejectsOversizedValue(t *testing.T) {
	s, err := Open(Options{ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteKey(1, "default", make([]byte, 9)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestStoreUnknownAlgorithm(t *testing.T) {
	if _, err := Open(Options{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestStoreSharded(t *testing.T) {
	s, err := Open(Options{
		F: 1, K: 2, ValueSize: 64,
		Shards: []ShardSpec{
			{Name: "hot", Algorithm: Adaptive},
			{Name: "cold", Algorithm: Replication, ValueSize: 32},
			{Name: "bulk", Algorithm: ErasureCoded},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Shards(); len(got) != 3 || got[0] != "hot" || got[1] != "cold" || got[2] != "bulk" {
		t.Fatalf("shards = %v", got)
	}
	// hot: n=4 (2+2), cold: n=3 (2+1), bulk: n=4.
	if s.Nodes() != 11 {
		t.Fatalf("total nodes = %d, want 11", s.Nodes())
	}
	// Keys equal to shard names route exactly; each shard round-trips.
	for i, name := range s.Shards() {
		want := []byte("v-" + name)
		if err := s.WriteKey(i+1, name, want); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
		got, err := s.ReadKey(50+i, name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("shard %s read %q, want prefix %q", name, got, want)
		}
	}
	// Aggregate storage is the sum of the per-shard costs.
	sum := 0
	for name, bits := range s.PerShardStorageBits() {
		if bits <= 0 {
			t.Fatalf("shard %s reports %d bits", name, bits)
		}
		sum += bits
	}
	if total := s.StorageBits(); total != sum {
		t.Fatalf("total storage %d != sum of shards %d", total, sum)
	}
	if bits := s.ShardStorageBits("hot"); bits <= 0 {
		t.Fatalf("ShardStorageBits(hot) = %d", bits)
	}
	// A crash within one shard's budget leaves every shard readable.
	if err := s.CrashShardNode("hot", 0); err != nil {
		t.Fatal(err)
	}
	for i, name := range s.Shards() {
		if _, err := s.ReadKey(80+i, name); err != nil {
			t.Fatalf("read %s after crash: %v", name, err)
		}
	}
}

func TestStoreShardedKeyRouting(t *testing.T) {
	s, err := Open(Options{
		ValueSize: 32,
		Shards:    []ShardSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Hashed keys read back what was written under the same key.
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("user-%d", i)
		want := []byte(fmt.Sprintf("value-%d", i))
		if err := s.WriteKey(1, key, want); err != nil {
			t.Fatalf("write %s: %v", key, err)
		}
		got, err := s.ReadKey(2, key)
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("key %s read %q, want prefix %q", key, got, want)
		}
	}
}

// TestDeprecatedPositionalWriteRead pins the back-compat contract of the
// deprecated positional Write/Read: they address the default (first) shard,
// interchangeably with WriteKey/ReadKey under that shard's name. Every other
// caller has migrated to the keyed forms; this test is the one deliberate
// holdout keeping the deprecated surface honest until it is removed.
func TestDeprecatedPositionalWriteRead(t *testing.T) {
	s, err := Open(Options{
		ValueSize: 32,
		Shards:    []ShardSpec{{Name: "first"}, {Name: "second"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Write(1, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadKey(2, "first")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:6], []byte("direct")) {
		t.Fatalf("positional write not visible via the default shard's name: %q", got)
	}
	if err := s.WriteKey(3, "first", []byte("keyed!")); err != nil {
		t.Fatal(err)
	}
	if got, err = s.Read(4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:6], []byte("keyed!")) {
		t.Fatalf("positional read missed the keyed write: %q", got)
	}
}

func TestOpenDoesNotMutateCallerShards(t *testing.T) {
	shards := []ShardSpec{{Name: "x"}}
	s1, err := Open(Options{Algorithm: Replication, F: 1, ValueSize: 32, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if shards[0].Algorithm != "" || shards[0].K != 0 {
		t.Fatalf("Open mutated the caller's shard specs: %+v", shards[0])
	}
	s2, err := Open(Options{Algorithm: Adaptive, F: 1, K: 2, ValueSize: 32, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Algorithm(); got != "adaptive(f=1,k=2)" {
		t.Fatalf("second Open built %q, want the adaptive register", got)
	}
}

func TestStoreShardedOversized(t *testing.T) {
	s, err := Open(Options{Shards: []ShardSpec{{Name: "tiny", ValueSize: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteKey(1, "tiny", make([]byte, 9)); err == nil {
		t.Fatal("oversized value accepted by shard")
	}
}

func TestStoreConcurrentClients(t *testing.T) {
	s, err := Open(Options{Algorithm: Adaptive, F: 2, K: 2, ValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for client := 1; client <= 6; client++ {
		client := client
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if err := s.WriteKey(client, "default", []byte(fmt.Sprintf("client-%d-gen-%d", client, i))); err != nil {
					t.Errorf("client %d write: %v", client, err)
					return
				}
				if _, err := s.ReadKey(client, "default"); err != nil {
					t.Errorf("client %d read: %v", client, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// After quiescence the adaptive register stores one piece per node.
	cfgWant := s.Nodes() * 8 * (128 / 2)
	if got := s.StorageBits(); got != cfgWant {
		t.Fatalf("quiescent storage = %d bits, want %d", got, cfgWant)
	}
}

// TestStoreBatchedWriteRead round-trips values through a store running the
// full batched quorum engine: group commit on every shard plus node-level
// RMW coalescing under the finite-capacity node model.
func TestStoreBatchedWriteRead(t *testing.T) {
	store, err := Open(Options{
		Algorithm: Adaptive, F: 1, K: 2, ValueSize: 64,
		Shards:      []ShardSpec{{Name: "a"}, {Name: "b"}},
		NodeLatency: 100 * time.Microsecond,
		Batch:       BatchOptions{MaxSize: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const clients = 12
	var wg sync.WaitGroup
	for cl := 1; cl <= clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", cl%4)
			if err := store.WriteKey(cl, key, []byte(fmt.Sprintf("v%d", cl))); err != nil {
				t.Errorf("client %d write: %v", cl, err)
				return
			}
			if _, err := store.ReadKey(cl, key); err != nil {
				t.Errorf("client %d read: %v", cl, err)
			}
		}()
	}
	wg.Wait()

	// A fresh read on each shard must decode cleanly after the batched load.
	for _, name := range store.Shards() {
		if _, err := store.ReadKey(100, name); err != nil {
			t.Fatalf("post-load read on shard %s: %v", name, err)
		}
	}
}

// TestStorageBreakdownExactUnderBatchedLoad pins the Definition 2 accounting
// under the batched engine: at every sample the aggregate base-object bits
// equal the sum of the per-shard attributions — while a batched workload is
// in flight, not just at quiescence.
func TestStorageBreakdownExactUnderBatchedLoad(t *testing.T) {
	store, err := Open(Options{
		Algorithm: Adaptive, F: 1, K: 2, ValueSize: 256,
		Shards:      []ShardSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		NodeLatency: 200 * time.Microsecond,
		Batch:       BatchOptions{MaxSize: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for cl := 1; cl <= 8; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 256)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				payload[0] = byte(i)
				key := fmt.Sprintf("key-%d", (cl+i)%6)
				if err := store.WriteKey(cl, key, payload); err != nil {
					t.Errorf("client %d: %v", cl, err)
					return
				}
			}
		}()
	}

	for sample := 0; sample < 25; sample++ {
		total, perShard := store.StorageBreakdown()
		sum := 0
		for _, bits := range perShard {
			sum += bits
		}
		if sum != total {
			close(stop)
			wg.Wait()
			t.Fatalf("sample %d: per-shard bits sum to %d, aggregate says %d", sample, sum, total)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// At quiescence the one-call accessors must agree with the breakdown too.
	total, perShard := store.StorageBreakdown()
	sum := 0
	for name, bits := range perShard {
		if got := store.ShardStorageBits(name); got != bits {
			t.Fatalf("ShardStorageBits(%s) = %d, breakdown says %d", name, got, bits)
		}
		sum += bits
	}
	if got := store.StorageBits(); got != total || sum != total {
		t.Fatalf("quiescent StorageBits = %d, breakdown total %d, per-shard sum %d", got, total, sum)
	}
}
