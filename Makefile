GO ?= go

# Benchmarks gated by the CI regression check; sleep-dominated (simulated
# node service time), so their ops/s is stable across machines. The loopback
# leg prices the RMW envelope wire format against the direct path; the WAL
# recovery leg bounds replay cost as the journal grows.
BENCH_GATE ?= BenchmarkShardedLiveThroughput|BenchmarkLoopbackLiveThroughput|BenchmarkWALRecovery
BENCH_TIME ?= 300ms
# Minimum total test coverage (percent) enforced by `make cover`.
COVER_FLOOR ?= 78
# Seeds per configuration for the simulator sweeps (sim-smoke runs fewer).
SIM_SEEDS ?= 500
SIM_SMOKE_SEEDS ?= 50
# Fuzzing budget for the checker fuzz smoke.
FUZZ_TIME ?= 20s

.PHONY: build test race bench bench-json bench-check cover fmt-check examples sim-smoke sim-soak sim-soak-reconfig sim-soak-merge sim-soak-autoreshard fuzz-smoke e2e-smoke e2e-chaos e2e-recovery linkcheck

# Compile everything and run static checks.
build:
	$(GO) build ./...
	$(GO) vet ./...

# Full unit and integration test suite.
test:
	$(GO) test ./...

# Race-detector pass over every package (commands and examples included),
# bounded so a scheduling deadlock fails fast instead of hanging CI.
race:
	$(GO) test -race -timeout 10m ./...

# Smoke-compile and smoke-run every benchmark once so perf code keeps working.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Run the gated benchmarks and emit BENCH.json (name, ns/op, ops/sec).
bench-json:
	$(GO) test -bench='$(BENCH_GATE)' -benchtime=$(BENCH_TIME) -run='^$$' -count=1 . > bench.out
	$(GO) run ./cmd/benchdiff -emit -in bench.out -o BENCH.json

# Diff BENCH.json against the committed baseline; fails on >25% throughput
# regression (or a benchmark silently disappearing).
bench-check: bench-json
	$(GO) run ./cmd/benchdiff -baseline BENCH.baseline.json -current BENCH.json -tolerance 0.25

# Coverage with an enforced floor.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Fail if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Quick deterministic fault-schedule sweep (PR CI): every provider ×
# concurrent/sequential/reconfig/mixed configuration — the reconfig legs run
# a split, a drain and a merge mid-traffic and check the stitched (and
# pruned-branch) cross-epoch histories — plus an autoshard smoke (the
# self-driving controller under a hot-key storm per provider) and the live
# batched churn smoke. Fails with a replayable report in sim-failures.txt.
sim-smoke:
	$(GO) run ./cmd/spacebench -sim -seeds $(SIM_SMOKE_SEEDS) \
		-sim-autoreshard hot-key -sim-out sim-failures.txt

# Nightly soak: the same sweep at full depth.
sim-soak:
	$(GO) run ./cmd/spacebench -sim -seeds $(SIM_SEEDS) -sim-out sim-failures.txt

# Nightly reconfiguration-heavy soak: two splits and two drains per run under
# more clients and operations, so migration chains (splitting a successor,
# draining a split child) and dual-epoch reads get deep coverage.
sim-soak-reconfig:
	$(GO) run ./cmd/spacebench -sim -seeds $(SIM_SEEDS) -sim-clients 4 -sim-ops 6 \
		-sim-reconfig-splits 2 -sim-reconfig-drains 2 -sim-reconfig-merges 0 \
		-sim-live=false -sim-out sim-failures-reconfig.txt

# Nightly merge + controller-crash soak: splits, drains and two merges per
# run with the adversary crashing the migration controller between migration
# steps (two budgeted crashes; standby controllers resume from the step
# ledger). A run fails on any checker violation, any move left unresolved, or
# any route left Seeding/Draining at run end.
sim-soak-merge:
	$(GO) run ./cmd/spacebench -sim -seeds $(SIM_SEEDS) -sim-clients 4 -sim-ops 6 \
		-sim-reconfig-splits 1 -sim-reconfig-drains 1 -sim-reconfig-merges 2 \
		-sim-controller-crashes 2 -sim-live=false -sim-out sim-failures-merge.txt

# Nightly self-driving-topology soak: the autoshard controller runs inside
# the simulation while the adversary shapes the workload against it — a
# hot-key storm, a mid-run skew flip, and a cold-shard pattern, per provider
# — with crash/recovery faults live throughout. Every seed must converge to
# a stable topology: clean verdicts, zero leaked routes, zero unresolved
# moves.
sim-soak-autoreshard:
	$(GO) run ./cmd/spacebench -sim -seeds $(SIM_SEEDS) -sim-clients 3 -sim-ops 10 \
		-sim-reconfig-splits 0 -sim-reconfig-drains 0 -sim-reconfig-merges 0 \
		-sim-autoreshard hot-key,skew-flip,cold-shard \
		-sim-live=false -sim-out sim-failures-autoreshard.txt

# Short coverage-guided fuzz runs. Defaults to the history package, where
# FuzzCheckers pins the consistency-condition hierarchy and checker
# determinism and FuzzHistoryMerge (FUZZ_TARGET=FuzzHistoryMerge) the
# cross-epoch stitching invariants; FUZZ_TARGET=FuzzEnvelopeRoundTrip
# FUZZ_PKG=./internal/register fuzzes the wire codecs of all four register
# providers (any payload that decodes must re-encode byte-identically);
# FUZZ_TARGET=FuzzWALReplay FUZZ_PKG=./internal/wal feeds damaged segment and
# snapshot files to the write-ahead log (open + replay must refuse or repair,
# never panic).
FUZZ_TARGET ?= FuzzCheckers
FUZZ_PKG ?= ./internal/history
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=$(FUZZ_TARGET) -fuzztime=$(FUZZ_TIME) $(FUZZ_PKG)

# Black-box end-to-end smoke of the TCP transport: builds the spacenode and
# spacebench binaries, starts a 4-node cluster on ephemeral ports, runs the
# paced sharded workload as a real client, SIGKILLs one node mid-run,
# restarts it with -recover on the same port, and checks the recorded
# history for strong regularity. -short keeps the paced window brief for PR
# CI; the nightly chaos leg runs the full window repeatedly.
e2e-smoke:
	$(GO) test -run 'TestClusterEndToEnd|TestClusterMetricsEndToEnd' -short -count=1 ./cmd/spacenode

e2e-chaos:
	$(GO) test -run TestClusterEndToEnd -count=5 -timeout 15m ./cmd/spacenode

# Durable-recovery end to end: per-node WAL directories, one node SIGKILLed
# mid-run and restarted as a fresh process that must rebuild its state by
# replaying its journal before listening (asserted via its WAL REPLAY line),
# with the client's history passing the strong-regularity checker.
e2e-recovery:
	$(GO) test -run TestClusterRecoveryEndToEnd -count=1 -timeout 10m ./cmd/spacenode

# Verify every relative markdown link (README, DESIGN, ROADMAP, docs/, ...)
# resolves, including #heading anchors. Dependency-free; external URLs are
# not fetched. Blocking nightly, advisory on PRs (see ci.yml).
linkcheck:
	$(GO) run ./cmd/linkcheck

# Run every example end-to-end with a tiny step budget.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/concurrencystorm -max-writers 2 -writes 1
	$(GO) run ./examples/kvstore
	$(GO) run ./cmd/spacebench -throughput -shards 2 -clients 2 -ops 50 -keys 8 -seed 1
	$(GO) run ./cmd/spacebench -throughput -shards 2 -clients 4 -ops 50 -keys 8 -seed 1 -node-latency 20us -batch 8 -arrival-rate 2000
