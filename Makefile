GO ?= go

.PHONY: build test race bench fmt-check examples

# Compile everything and run static checks.
build:
	$(GO) build ./...
	$(GO) vet ./...

# Full unit and integration test suite.
test:
	$(GO) test ./...

# Race-detector pass over the concurrent core.
race:
	$(GO) test -race ./internal/... .

# Smoke-compile and smoke-run every benchmark once so perf code keeps working.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Fail if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Run every example end-to-end with a tiny step budget.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/concurrencystorm -max-writers 2 -writes 1
	$(GO) run ./examples/kvstore
	$(GO) run ./cmd/spacebench -throughput -shards 2 -clients 2 -ops 50 -keys 8
