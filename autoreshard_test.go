package spacebounds_test

import (
	"testing"
	"time"

	"spacebounds"
)

// TestAutoReshardSplitsHotShard runs the self-driving topology controller
// against a live store: hammering one shard past the hot threshold must make
// the controller split it — without any operator call — while the store keeps
// serving and the other shard is left alone.
func TestAutoReshardSplitsHotShard(t *testing.T) {
	store, err := spacebounds.Open(spacebounds.Options{
		ValueSize: 32,
		Shards:    []spacebounds.ShardSpec{{Name: "hot"}, {Name: "idle"}},
		AutoReshard: spacebounds.AutoReshardOptions{
			Interval:      2 * time.Millisecond,
			HotOps:        5, // ops per 2ms interval; the loop below exceeds this easily
			SustainTicks:  2,
			CooldownTicks: 2,
			MaxMoves:      1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if store.Metrics() == nil {
		t.Fatal("enabling AutoReshard without Options.Metrics must create a private registry")
	}

	deadline := time.Now().Add(10 * time.Second)
	for store.AutoReshardStats().Applied == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never split the hot shard; stats = %+v", store.AutoReshardStats())
		}
		if err := store.WriteKey(1, "hot", []byte("load")); err != nil {
			t.Fatal(err)
		}
	}

	st := store.AutoReshardStats()
	if st.Splits != 1 || st.Plans != 1 {
		t.Fatalf("stats = %+v, want exactly one split plan", st)
	}
	shards := store.Shards()
	if len(shards) != 3 {
		t.Fatalf("topology = %v, want the hot shard split into two successors plus idle", shards)
	}
	for _, name := range shards {
		if name == "hot" {
			t.Fatalf("topology %v still contains the split shard", shards)
		}
	}

	// The store must keep serving both keyspaces across the move.
	if err := store.WriteKey(2, "hot", []byte("after")); err != nil {
		t.Fatalf("write to the split keyspace: %v", err)
	}
	if _, err := store.ReadKey(3, "idle"); err != nil {
		t.Fatalf("read from the untouched shard: %v", err)
	}
}

// TestAutoReshardMergesColdShards: a store whose shards all go quiet
// converges downward — the controller merges cold shards until the MinShards
// floor stops it.
func TestAutoReshardMergesColdShards(t *testing.T) {
	store, err := spacebounds.Open(spacebounds.Options{
		ValueSize: 32,
		Shards:    []spacebounds.ShardSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		AutoReshard: spacebounds.AutoReshardOptions{
			Interval:      2 * time.Millisecond,
			HotOps:        1000,
			ColdOps:       1,
			SustainTicks:  2,
			CooldownTicks: 2,
			MinShards:     2,
			MaxMoves:      3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Seed each shard once, then leave the store idle: every shard shows
	// zero ops per tick, and the controller merges down to the floor.
	for i, key := range []string{"a", "b", "c"} {
		if err := store.WriteKey(i+1, key, []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(store.Shards()) > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never merged; topology = %v, stats = %+v", store.Shards(), store.AutoReshardStats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// At the floor the controller must hold: give it a few more cycles and
	// confirm no further merge fires.
	time.Sleep(50 * time.Millisecond)
	if got := len(store.Shards()); got != 2 {
		t.Fatalf("topology shrank past the MinShards floor: %v", store.Shards())
	}
	if st := store.AutoReshardStats(); st.Merges != 1 {
		t.Fatalf("stats = %+v, want exactly one merge", st)
	}

	// All three original keyspaces still serve.
	for i, key := range []string{"a", "b", "c"} {
		if _, err := store.ReadKey(10+i, key); err != nil {
			t.Fatalf("read %q after merge: %v", key, err)
		}
	}
}

// TestAutoReshardRejectsBadConfig: an enabled controller with no usable
// signal (or an inverted hysteresis band) fails Open loudly instead of
// spinning a loop that can never plan.
func TestAutoReshardRejectsBadConfig(t *testing.T) {
	_, err := spacebounds.Open(spacebounds.Options{
		AutoReshard: spacebounds.AutoReshardOptions{Interval: time.Millisecond},
	})
	if err == nil {
		t.Fatal("Open accepted an autoreshard config with no thresholds")
	}
	_, err = spacebounds.Open(spacebounds.Options{
		AutoReshard: spacebounds.AutoReshardOptions{
			Interval: time.Millisecond, HotOps: 10, ColdOps: 20,
		},
	})
	if err == nil {
		t.Fatal("Open accepted ColdOps above HotOps; the hysteresis band would be inverted")
	}
}
