package spacebounds

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatchedStoreUnderCrashRestartChurn drives concurrent clients through
// the batched quorum engine while the fault injector crashes and restarts
// storage nodes underneath them, and pins two invariants:
//
//   - the Batcher never commits a partial lane: every operation submitted to
//     a batcher receives exactly one response, and the batcher's member
//     counters account for every submission — an operation is never silently
//     dropped from, or double-counted in, a shared round that raced a crash;
//   - StorageBreakdown stays summation-consistent: the aggregate equals the
//     sum of the per-shard attribution in every sample taken while batches
//     and faults are in flight.
//
// Run with -race this is also the concurrency check on the injector's
// interaction with the batched live engine.
func TestBatchedStoreUnderCrashRestartChurn(t *testing.T) {
	const (
		clients   = 8
		opsPer    = 40
		readEvery = 4 // every 4th op reads
	)
	store, err := Open(Options{
		Shards: []ShardSpec{
			{Name: "alpha"}, {Name: "beta"},
		},
		F:           1,
		K:           2,
		ValueSize:   64,
		NodeLatency: 50 * time.Microsecond,
		Batch:       BatchOptions{MaxSize: 4},
		Faults:      FaultOptions{Interval: time.Millisecond, Downtime: 3 * time.Millisecond, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Sampler: StorageBreakdown must be summation-consistent in every sample
	// taken while batches commit and nodes crash mid-flight.
	stopSampling := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	var samples atomic.Int64
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			total, perShard := store.StorageBreakdown()
			sum := 0
			for _, bits := range perShard {
				sum += bits
			}
			if total != sum {
				t.Errorf("StorageBreakdown inconsistent: total %d != sum of shards %d (%v)", total, sum, perShard)
				return
			}
			samples.Add(1)
		}
	}()

	var wg sync.WaitGroup
	var writes, reads, writeErrs, readErrs atomic.Int64
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("key-%d", (c+i)%8)
				if i%readEvery == 0 {
					if _, err := store.ReadKey(1+c, key); err != nil {
						// Reads may legitimately starve: the adaptive register
						// is FW-terminating, so reads are only guaranteed to
						// complete once writes stop.
						readErrs.Add(1)
					} else {
						reads.Add(1)
					}
				} else {
					val := []byte(fmt.Sprintf("c%d-i%d", c, i))
					if err := store.WriteKey(1+c, key, val); err != nil {
						writeErrs.Add(1)
					} else {
						writes.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stopSampling)
	samplerWG.Wait()

	// Every submission must be accounted for: completions plus errors equal
	// the ops issued (no hung or vanished operations), and the batcher's
	// member counters cover every operation that went through a lane.
	issued := int64(clients * opsPer)
	if got := writes.Load() + reads.Load() + writeErrs.Load() + readErrs.Load(); got != issued {
		t.Fatalf("operations unaccounted for: %d of %d", got, issued)
	}
	st := store.BatchStats()
	if int64(st.Writes+st.Reads) != issued {
		t.Fatalf("batcher lanes carried %d ops, %d were submitted: a lane committed partially",
			st.Writes+st.Reads, issued)
	}
	if st.WriteRounds > st.Writes || st.ReadRounds > st.Reads {
		t.Fatalf("more rounds than members (writes %d/%d, reads %d/%d)",
			st.WriteRounds, st.Writes, st.ReadRounds, st.Reads)
	}
	if st.WriteRounds == 0 || st.ReadRounds == 0 {
		t.Fatal("batcher dispatched no rounds; the test exercised nothing")
	}
	// Individual rounds may legitimately fail under churn (a round that
	// dispatched while node X was down fails fast when node Y crashes before
	// the round's quorum completes — two faults seen across one restart
	// boundary, even though at most F nodes are down at any instant), so no
	// error-rate bound is asserted; what must hold is that traffic flows in
	// both directions throughout the churn.
	if writes.Load() == 0 || reads.Load() == 0 {
		t.Fatalf("no successful traffic (writes %d, reads %d)", writes.Load(), reads.Load())
	}
	fs := store.FaultStats()
	if fs.Crashes == 0 {
		t.Fatal("fault injector never crashed a node; churn was not exercised")
	}
	if fs.Restarts == 0 {
		t.Fatal("fault injector never restarted a node")
	}
	if samples.Load() == 0 {
		t.Fatal("storage sampler never ran")
	}
}

// TestCloseIsIdempotentWithFaultInjection guards the explicit-plus-deferred
// Close pattern used throughout the examples.
func TestCloseIsIdempotentWithFaultInjection(t *testing.T) {
	store, err := Open(Options{Faults: FaultOptions{Interval: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	store.Close()
	store.Close() // must not panic on the injector's stop channel
}

// TestFaultInjectorRespectsBudgetAndStops checks that the injector never
// takes more than F nodes of a shard down at once and stops cleanly with the
// store.
func TestFaultInjectorRespectsBudgetAndStops(t *testing.T) {
	store, err := Open(Options{
		Shards:    []ShardSpec{{Name: "only"}},
		F:         1,
		K:         2,
		ValueSize: 16,
		Faults:    FaultOptions{Interval: 200 * time.Microsecond, Downtime: time.Millisecond, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Millisecond)
	okReads, failedReads := 0, 0
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			// With n = 2F+K = 4 and at most F = 1 down at any instant, read
			// quorums are almost always reachable. A rare individual failure
			// is allowed: a round dispatched while node X was down also loses
			// node Y if Y crashes right after X restarts (two faults observed
			// across one restart boundary), which fail-fast clients surface
			// as an error.
			if _, err := store.ReadKey(1, "only"); err != nil {
				failedReads++
			} else {
				okReads++
			}
			time.Sleep(100 * time.Microsecond) // leave the injector CPU time
		}
	}
	if okReads == 0 {
		t.Fatalf("no read ever succeeded under budgeted churn (%d failures)", failedReads)
	}
	if failedReads > okReads {
		t.Fatalf("reads mostly failing under budgeted churn: %d failed, %d ok", failedReads, okReads)
	}
	if fs := store.FaultStats(); fs.Crashes == 0 {
		t.Fatal("injector never fired")
	}
	store.Close()
	// After Close the injector is halted; stats are stable.
	a := store.FaultStats()
	time.Sleep(2 * time.Millisecond)
	if b := store.FaultStats(); a != b {
		t.Fatalf("injector still running after Close: %+v vs %+v", a, b)
	}
}
