package spacebounds_test

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"spacebounds"
	"spacebounds/internal/register"
	"spacebounds/internal/shard"
	"spacebounds/internal/transport"
	"spacebounds/internal/value"
)

// docFamily is one row of the docs/METRICS.md reference tables.
type docFamily struct {
	Type   string
	Labels []string
}

// metricRow matches a table row documenting one family: the first cell holds
// the backticked metric name, the second the type, the third the label keys.
var metricRow = regexp.MustCompile("^\\|\\s*`(spacebounds_[a-z_]+)`\\s*\\|([^|]*)\\|([^|]*)\\|")

// backticked pulls every `token` out of a table cell.
var backticked = regexp.MustCompile("`([^`]+)`")

// parseMetricsDoc reads the reference tables out of docs/METRICS.md.
func parseMetricsDoc(t *testing.T) map[string]docFamily {
	t.Helper()
	data, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := make(map[string]docFamily)
	for _, line := range strings.Split(string(data), "\n") {
		m := metricRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if _, dup := doc[name]; dup {
			t.Errorf("docs/METRICS.md documents %s twice", name)
		}
		var labels []string
		for _, lm := range backticked.FindAllStringSubmatch(m[3], -1) {
			labels = append(labels, lm[1])
		}
		doc[name] = docFamily{Type: strings.TrimSpace(m[2]), Labels: labels}
	}
	if len(doc) == 0 {
		t.Fatal("docs/METRICS.md has no metric rows; is the table format intact?")
	}
	return doc
}

// TestMetricsDocSync proves docs/METRICS.md enumerates exactly the metric
// families the system registers — no more, no fewer, with matching types and
// label keys. It exercises every instrumented subsystem against one registry:
// a batched store (quorum engine, batching, reconfiguration) plus a TCP
// client/server pair (both transport sides), mirroring how a real deployment
// shares a registry.
func TestMetricsDocSync(t *testing.T) {
	reg := spacebounds.NewMetrics()

	store, err := spacebounds.Open(spacebounds.Options{
		ValueSize:  64,
		Shards:     []spacebounds.ShardSpec{{Name: "a"}, {Name: "b"}},
		Batch:      spacebounds.BatchOptions{MaxSize: 4},
		Durability: spacebounds.Durability{Dir: t.TempDir()},
		Metrics:    reg,
		Trace:      spacebounds.NewTracer(spacebounds.TraceOptions{Sample: 1, Metrics: reg}),
		// A long interval keeps the controller quiet; its metric families
		// register eagerly at Open either way.
		AutoReshard: spacebounds.AutoReshardOptions{Interval: time.Hour, HotOps: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.WriteKey(1, "a", []byte("doc-sync")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadKey(2, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SplitShard("b"); err != nil {
		t.Fatal(err)
	}

	// One write over real TCP registers (and exercises) both transport sides.
	specs := []shard.Spec{{Name: "wire", Algorithm: "abd", Config: register.Config{F: 1, K: 1, DataLen: 16}}}
	backing, err := shard.New(specs)
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	srv := transport.NewServer(backing.Cluster(), transport.WithServerMetrics(reg))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := transport.Dial([]string{addr.String()}, transport.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := shard.NewRemote(specs, cli)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if err := rs.Write(1, "wire", value.FromBytes(make([]byte, 16))); err != nil {
		t.Fatal(err)
	}

	doc := parseMetricsDoc(t)
	seen := make(map[string]bool)
	for _, fam := range reg.Families() {
		seen[fam.Name] = true
		row, ok := doc[fam.Name]
		if !ok {
			t.Errorf("registry has %s (%v%s) but docs/METRICS.md does not document it",
				fam.Name, fam.Type, labelSuffix(fam.LabelKeys))
			continue
		}
		if row.Type != fam.Type.String() {
			t.Errorf("%s: docs/METRICS.md says type %q, registry says %q", fam.Name, row.Type, fam.Type)
		}
		if fmt.Sprint(row.Labels) != fmt.Sprint(fam.LabelKeys) {
			t.Errorf("%s: docs/METRICS.md says labels %v, registry says %v", fam.Name, row.Labels, fam.LabelKeys)
		}
	}
	for name := range doc {
		if !seen[name] {
			t.Errorf("docs/METRICS.md documents %s but nothing registers it", name)
		}
	}
	if t.Failed() {
		t.Log("update docs/METRICS.md (or the metric registration) so the reference and the registry agree")
	}
}

// labelSuffix renders label keys for error messages.
func labelSuffix(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	return " labeled by " + strings.Join(keys, ",")
}
